//! Task mapping: placing the 2D logical processor array on the torus.
//!
//! The BFS algorithm arranges `P = R × C` processes in a logical
//! processor array; *expand* communication happens within logical
//! columns, *fold* communication within logical rows (paper §2.2). How
//! the logical array is laid onto the physical 3D torus determines how
//! many physical hops those group communications traverse.
//!
//! Paper Figure 1 maps an `Lx × Ly` logical array to a `wc × wr × 4`
//! torus by slicing the logical array into `wc × wr` tiles and stacking
//! tiles that share a tile-column on *adjacent physical planes*, so that
//! expand groups (logical columns) stay physically compact.
//!
//! We implement that mapping ([`TaskMappingKind::FoldedPlanes`]), plus a
//! naive row-major mapping and a pseudo-random mapping as ablation
//! baselines, and a hop-cost evaluator used by the mapping ablation
//! bench.

use crate::coord::{Coord3, TorusDims};
use crate::routing::hop_distance;
use serde::{Deserialize, Serialize};

/// Shape of the logical processor array (R rows × C columns).
///
/// Logical rank numbering is row-major: rank = `row * cols + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogicalArray {
    /// Number of logical rows (R).
    pub rows: usize,
    /// Number of logical columns (C).
    pub cols: usize,
}

impl LogicalArray {
    /// Create a logical array; panics on zero extent.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "logical array extents must be >= 1");
        Self { rows, cols }
    }

    /// Total number of processes.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the array is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Rank of logical position `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Logical position `(row, col)` of `rank`.
    pub fn position_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.len());
        (rank / self.cols, rank % self.cols)
    }

    /// Ranks forming logical column `col` (an expand group), in row order.
    pub fn column_group(&self, col: usize) -> Vec<usize> {
        (0..self.rows).map(|r| self.rank_of(r, col)).collect()
    }

    /// Ranks forming logical row `row` (a fold group), in column order.
    pub fn row_group(&self, row: usize) -> Vec<usize> {
        (0..self.cols).map(|c| self.rank_of(row, c)).collect()
    }
}

/// Available mapping strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskMappingKind {
    /// Logical ranks laid out in linear (x-fastest) node-index order.
    RowMajor,
    /// The paper's Figure 1 mapping: logical array tiled into torus
    /// planes, tiles in the same tile-column on adjacent planes.
    FoldedPlanes,
    /// Deterministic pseudo-random permutation (worst-case ablation).
    Scrambled,
}

/// A concrete assignment of every logical rank to a torus coordinate.
#[derive(Debug, Clone)]
pub struct TaskMapping {
    kind: TaskMappingKind,
    logical: LogicalArray,
    dims: TorusDims,
    coords: Vec<Coord3>,
}

impl TaskMapping {
    /// Build a mapping of the given kind. Panics if the torus has fewer
    /// nodes than the logical array has processes.
    pub fn new(kind: TaskMappingKind, logical: LogicalArray, dims: TorusDims) -> Self {
        assert!(
            logical.len() <= dims.node_count(),
            "logical array has {} processes but torus {:?} has only {} nodes",
            logical.len(),
            dims,
            dims.node_count()
        );
        let coords = match kind {
            TaskMappingKind::RowMajor => Self::row_major_coords(logical, dims),
            TaskMappingKind::FoldedPlanes => Self::folded_coords(logical, dims),
            TaskMappingKind::Scrambled => Self::scrambled_coords(logical, dims),
        };
        Self {
            kind,
            logical,
            dims,
            coords,
        }
    }

    /// Pick torus dimensions shaped like the paper's `wc × wr × 4`
    /// example for a given logical array: a torus with z extent up to 4
    /// whose x–y planes tile the logical array.
    pub fn paper_torus_for(logical: LogicalArray) -> TorusDims {
        let p = logical.len();
        // Plane area = ceil(p / 4), then near-square plane.
        let z = 4usize.min(p).max(1);
        let plane = p.div_ceil(z);
        let mut wx = (plane as f64).sqrt().ceil() as usize;
        wx = wx.max(1);
        let wy = plane.div_ceil(wx).max(1);
        // Round the plane up so every tile fits.
        TorusDims::new(wx.max(1), wy.max(1), z)
    }

    fn row_major_coords(logical: LogicalArray, dims: TorusDims) -> Vec<Coord3> {
        (0..logical.len()).map(|r| dims.delinearize(r)).collect()
    }

    /// Figure 1: slice the logical array into `dims.x × dims.y` tiles
    /// (logical cols along torus x, logical rows along torus y); walk the
    /// tiles in column-major tile order so tiles sharing a tile-column
    /// land on adjacent z planes.
    fn folded_coords(logical: LogicalArray, dims: TorusDims) -> Vec<Coord3> {
        let tiles_down = logical.rows.div_ceil(dims.y); // tile rows
        let mut coords = vec![Coord3::new(0, 0, 0); logical.len()];
        let mut taken = vec![false; dims.node_count()];
        let mut overflow: Vec<usize> = Vec::new();
        for row in 0..logical.rows {
            for col in 0..logical.cols {
                let tile_r = row / dims.y;
                let tile_c = col / dims.x;
                // Column-major tile index: same tile-column => consecutive.
                let tile_idx = tile_c * tiles_down + tile_r;
                let x = col % dims.x;
                let y = row % dims.y;
                // If there are more tiles than z planes, wrap around in z;
                // the wrap preserves adjacency within a tile column as long
                // as tiles_down <= dims.z (true for paper-shaped tori).
                let z = tile_idx % dims.z;
                let rank = logical.rank_of(row, col);
                let desired = Coord3::new(x, y, z);
                let slot = dims.linearize(desired);
                if taken[slot] {
                    // Partially-filled tiles overflowing the z extent can
                    // collide; resolve deterministically afterwards.
                    overflow.push(rank);
                } else {
                    taken[slot] = true;
                    coords[rank] = desired;
                }
            }
        }
        // Place colliding ranks on the free slots in linear order: keeps
        // the mapping total and injective for any array/torus pair.
        let mut cursor = 0usize;
        for rank in overflow {
            while taken[cursor] {
                cursor += 1;
            }
            taken[cursor] = true;
            coords[rank] = dims.delinearize(cursor);
        }
        coords
    }

    /// SplitMix64-based deterministic scramble of linear placement.
    fn scrambled_coords(logical: LogicalArray, dims: TorusDims) -> Vec<Coord3> {
        let n = dims.node_count();
        let mut slots: Vec<usize> = (0..n).collect();
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // Fisher-Yates with the deterministic stream.
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            slots.swap(i, j);
        }
        (0..logical.len())
            .map(|r| dims.delinearize(slots[r]))
            .collect()
    }

    /// The mapping strategy used.
    pub fn kind(&self) -> TaskMappingKind {
        self.kind
    }

    /// The logical array shape.
    pub fn logical(&self) -> LogicalArray {
        self.logical
    }

    /// The torus this mapping targets.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    /// Physical coordinate of a logical rank.
    pub fn coord_of(&self, rank: usize) -> Coord3 {
        self.coords[rank]
    }

    /// Physical hop distance between two logical ranks.
    pub fn rank_distance(&self, a: usize, b: usize) -> usize {
        hop_distance(self.dims, self.coords[a], self.coords[b])
    }

    /// Sum of hop distances around a ring visiting `group` in order (with
    /// wraparound from last back to first). This is the per-step physical
    /// cost of ring collectives on the group.
    pub fn ring_hop_cost(&self, group: &[usize]) -> usize {
        if group.len() < 2 {
            return 0;
        }
        let mut total = 0;
        for i in 0..group.len() {
            let a = group[i];
            let b = group[(i + 1) % group.len()];
            total += self.rank_distance(a, b);
        }
        total
    }

    /// Mean ring hop cost over all expand groups (logical columns).
    pub fn mean_expand_ring_cost(&self) -> f64 {
        let cols = self.logical.cols;
        let total: usize = (0..cols)
            .map(|c| self.ring_hop_cost(&self.logical.column_group(c)))
            .sum();
        total as f64 / cols as f64
    }

    /// Mean ring hop cost over all fold groups (logical rows).
    pub fn mean_fold_ring_cost(&self) -> f64 {
        let rows = self.logical.rows;
        let total: usize = (0..rows)
            .map(|r| self.ring_hop_cost(&self.logical.row_group(r)))
            .sum();
        total as f64 / rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct(coords: &[Coord3]) -> bool {
        let set: HashSet<_> = coords.iter().collect();
        set.len() == coords.len()
    }

    #[test]
    fn logical_array_indexing_roundtrip() {
        let la = LogicalArray::new(4, 6);
        for r in 0..4 {
            for c in 0..6 {
                let rank = la.rank_of(r, c);
                assert_eq!(la.position_of(rank), (r, c));
            }
        }
    }

    #[test]
    fn groups_partition_ranks() {
        let la = LogicalArray::new(3, 5);
        let mut seen = HashSet::new();
        for c in 0..5 {
            for r in la.column_group(c) {
                assert!(seen.insert(r));
            }
        }
        assert_eq!(seen.len(), la.len());
    }

    #[test]
    fn row_major_is_injective() {
        let la = LogicalArray::new(8, 8);
        let dims = TorusDims::new(4, 4, 4);
        let m = TaskMapping::new(TaskMappingKind::RowMajor, la, dims);
        let coords: Vec<_> = (0..la.len()).map(|r| m.coord_of(r)).collect();
        assert!(distinct(&coords));
    }

    #[test]
    fn folded_is_injective_when_exact_fit() {
        // 8x8 logical on 4x4x4 torus: tiles are 4x4, 2x2 tile grid = 4 tiles.
        let la = LogicalArray::new(8, 8);
        let dims = TorusDims::new(4, 4, 4);
        let m = TaskMapping::new(TaskMappingKind::FoldedPlanes, la, dims);
        let coords: Vec<_> = (0..la.len()).map(|r| m.coord_of(r)).collect();
        assert!(distinct(&coords));
    }

    #[test]
    fn scrambled_is_injective() {
        let la = LogicalArray::new(8, 8);
        let dims = TorusDims::new(4, 4, 4);
        let m = TaskMapping::new(TaskMappingKind::Scrambled, la, dims);
        let coords: Vec<_> = (0..la.len()).map(|r| m.coord_of(r)).collect();
        assert!(distinct(&coords));
    }

    #[test]
    fn folded_tile_column_adjacent_planes() {
        // Paper property: tiles in the same tile-column are on adjacent
        // physical planes, so a logical column crossing a tile boundary
        // moves exactly one z plane.
        let la = LogicalArray::new(8, 4); // tiles: 2 down, 1 across on 4x4x4
        let dims = TorusDims::new(4, 4, 4);
        let m = TaskMapping::new(TaskMappingKind::FoldedPlanes, la, dims);
        // rank (3, 0) is in tile row 0, rank (4, 0) in tile row 1.
        let a = m.coord_of(la.rank_of(3, 0));
        let b = m.coord_of(la.rank_of(4, 0));
        assert_eq!(a.z + 1, b.z, "consecutive tiles must be adjacent planes");
        // Same (x) column within a plane.
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn folded_beats_scrambled_on_expand_cost() {
        let la = LogicalArray::new(16, 16);
        let dims = TorusDims::new(8, 8, 4);
        let folded = TaskMapping::new(TaskMappingKind::FoldedPlanes, la, dims);
        let scrambled = TaskMapping::new(TaskMappingKind::Scrambled, la, dims);
        assert!(
            folded.mean_expand_ring_cost() < scrambled.mean_expand_ring_cost(),
            "folded {} vs scrambled {}",
            folded.mean_expand_ring_cost(),
            scrambled.mean_expand_ring_cost()
        );
    }

    #[test]
    fn paper_torus_fits_logical() {
        for (r, c) in [(1, 1), (2, 3), (16, 16), (128, 256)] {
            let la = LogicalArray::new(r, c);
            let dims = TaskMapping::paper_torus_for(la);
            assert!(dims.node_count() >= la.len(), "{la:?} -> {dims:?}");
            // And all three mappings construct without panicking.
            for kind in [
                TaskMappingKind::RowMajor,
                TaskMappingKind::FoldedPlanes,
                TaskMappingKind::Scrambled,
            ] {
                let _ = TaskMapping::new(kind, la, dims);
            }
        }
    }

    #[test]
    fn ring_hop_cost_single_member_is_zero() {
        let la = LogicalArray::new(1, 1);
        let dims = TorusDims::new(2, 2, 1);
        let m = TaskMapping::new(TaskMappingKind::RowMajor, la, dims);
        assert_eq!(m.ring_hop_cost(&[0]), 0);
    }

    #[test]
    #[should_panic]
    fn oversubscription_rejected() {
        let la = LogicalArray::new(10, 10);
        let dims = TorusDims::new(2, 2, 2);
        TaskMapping::new(TaskMappingKind::RowMajor, la, dims);
    }
}
