//! # bgl-torus — BlueGene/L-style 3D torus machine model
//!
//! This crate is the hardware substrate for the SC'05 distributed BFS
//! reproduction. The paper (Yoo et al., *A Scalable Distributed Parallel
//! Breadth-First Search Algorithm on BlueGene/L*) evaluates on the
//! 32,768-node BlueGene/L, whose compute nodes are interconnected as a
//! 3D torus with bi-directional nearest-neighbour links. The BFS
//! collectives of the paper (§3.2) are designed specifically around that
//! torus: ring communication within processor groups, and a task mapping
//! that folds the 2D logical processor array onto physical torus planes
//! (paper Figure 1).
//!
//! Since the physical machine is unavailable, this crate models the parts
//! of it the algorithm's performance depends on:
//!
//! * [`coord`] — torus coordinates and wrap-around arithmetic;
//! * [`routing`] — dimension-ordered (e-cube) routing and hop distances;
//! * [`machine`] — machine presets (BlueGene/L full/half system, the MCR
//!   Linux cluster used as the paper's conventional comparison platform);
//! * [`mapping`] — the Figure 1 task mapping from an `Lx × Ly` logical
//!   processor array onto torus planes, plus naive mappings for ablation;
//! * [`cost`] — an α–β–hop communication cost model with per-link
//!   accounting, used by `bgl-comm` to derive simulated times;
//! * [`fault`] — deterministic, seeded fault plans (dead links/nodes,
//!   degraded bandwidth, lossy messaging, scheduled rank deaths) and
//!   fault-aware routing that detours around dead components.
//!
//! The model is deliberately analytic rather than cycle-accurate: the
//! paper's claims we reproduce are about message counts, sizes, hop
//! structure and their scaling, not absolute wall-clock seconds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coord;
pub mod cost;
pub mod fault;
pub mod machine;
pub mod mapping;
pub mod routing;

pub use coord::{Coord3, TorusDims};
pub use cost::{CostModel, LinkTraffic, TransferCost};
pub use fault::{
    detour_hops, route_with_faults, ChaosSpec, Delivery, FaultPlan, Isolated, RankDeath,
};
pub use machine::{MachineConfig, MachineKind};
pub use mapping::{LogicalArray, TaskMapping, TaskMappingKind};
pub use routing::{diameter, hop_distance, mean_hop_distance, route_dimension_ordered, RouteStep};
