//! Torus coordinates and wrap-around arithmetic.
//!
//! A 3D torus of dimensions `x × y × z` connects node `(a, b, c)` to its
//! six nearest neighbours with wrap-around in every dimension. BlueGene/L
//! is a `64 × 32 × 32` torus (65,536 nodes); the paper's experiments run
//! on a 32,768-node half-system partition (`32 × 32 × 32`).

use serde::{Deserialize, Serialize};

/// Dimensions of a 3D torus.
///
/// All dimensions must be at least 1. A dimension of 1 or 2 degenerates:
/// with 1 there is no link in that dimension, with 2 the "two" directions
/// reach the same neighbour (we still count a single hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TorusDims {
    /// Extent in X.
    pub x: usize,
    /// Extent in Y.
    pub y: usize,
    /// Extent in Z.
    pub z: usize,
}

impl TorusDims {
    /// Create torus dimensions; panics if any dimension is zero.
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x >= 1 && y >= 1 && z >= 1, "torus dimensions must be >= 1");
        Self { x, y, z }
    }

    /// Total number of nodes in the torus.
    pub fn node_count(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Extent along dimension `d` (0 = x, 1 = y, 2 = z).
    pub fn extent(&self, d: usize) -> usize {
        match d {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            // bgl-lint: allow(r1, reason = "API contract: dimension indices are the literals 0..3 at every call site")
            _ => panic!("torus dimension index {d} out of range (0..3)"),
        }
    }

    /// Whether `c` is a valid coordinate in this torus.
    pub fn contains(&self, c: Coord3) -> bool {
        c.x < self.x && c.y < self.y && c.z < self.z
    }

    /// Convert a coordinate into a linear node index (x-major, i.e. the
    /// x coordinate varies fastest: `idx = x + dims.x * (y + dims.y * z)`).
    pub fn linearize(&self, c: Coord3) -> usize {
        debug_assert!(self.contains(c), "coordinate {c:?} outside torus {self:?}");
        c.x + self.x * (c.y + self.y * c.z)
    }

    /// Inverse of [`TorusDims::linearize`].
    pub fn delinearize(&self, idx: usize) -> Coord3 {
        debug_assert!(idx < self.node_count(), "node index {idx} out of range");
        let x = idx % self.x;
        let y = (idx / self.x) % self.y;
        let z = idx / (self.x * self.y);
        Coord3 { x, y, z }
    }

    /// Minimal wrap-around distance between positions `a` and `b` along a
    /// single dimension of extent `extent`.
    pub fn axis_distance(extent: usize, a: usize, b: usize) -> usize {
        debug_assert!(a < extent && b < extent);
        let d = a.abs_diff(b);
        d.min(extent - d)
    }

    /// Signed minimal step direction (+1, -1, or 0) to move from `a`
    /// towards `b` along a dimension of extent `extent`, taking the
    /// shorter way around the ring. Ties (exactly half way) go +1.
    pub fn axis_step(extent: usize, a: usize, b: usize) -> isize {
        if a == b {
            return 0;
        }
        let fwd = (b + extent - a) % extent; // steps going +1
        let bwd = (a + extent - b) % extent; // steps going -1
        if fwd <= bwd {
            1
        } else {
            -1
        }
    }

    /// Iterate over every coordinate of the torus in linear-index order.
    pub fn iter(&self) -> impl Iterator<Item = Coord3> + '_ {
        (0..self.node_count()).map(|i| self.delinearize(i))
    }
}

/// A coordinate in a 3D torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord3 {
    /// X position.
    pub x: usize,
    /// Y position.
    pub y: usize,
    /// Z position.
    pub z: usize,
}

impl Coord3 {
    /// Create a coordinate.
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        Self { x, y, z }
    }

    /// Component along dimension `d` (0 = x, 1 = y, 2 = z).
    pub fn component(&self, d: usize) -> usize {
        match d {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            // bgl-lint: allow(r1, reason = "API contract: dimension indices are the literals 0..3 at every call site")
            _ => panic!("coordinate dimension index {d} out of range (0..3)"),
        }
    }

    /// Return a copy with dimension `d` set to `v`.
    pub fn with_component(mut self, d: usize, v: usize) -> Self {
        match d {
            0 => self.x = v,
            1 => self.y = v,
            2 => self.z = v,
            // bgl-lint: allow(r1, reason = "API contract: dimension indices are the literals 0..3 at every call site")
            _ => panic!("coordinate dimension index {d} out of range (0..3)"),
        }
        self
    }

    /// Move one step along dimension `d` in direction `dir` (±1), with
    /// wrap-around in a torus of dimensions `dims`.
    pub fn step(&self, dims: TorusDims, d: usize, dir: isize) -> Coord3 {
        let extent = dims.extent(d);
        let cur = self.component(d);
        let next = match dir {
            1 => (cur + 1) % extent,
            -1 => (cur + extent - 1) % extent,
            // bgl-lint: allow(r1, reason = "API contract: routing only ever passes axis_step's ±1 outputs")
            _ => panic!("step direction must be +1 or -1, got {dir}"),
        };
        self.with_component(d, next)
    }

    /// The six (or fewer, in degenerate tori) nearest neighbours.
    pub fn neighbors(&self, dims: TorusDims) -> Vec<Coord3> {
        let mut out = Vec::with_capacity(6);
        for d in 0..3 {
            if dims.extent(d) > 1 {
                out.push(self.step(dims, d, 1));
                if dims.extent(d) > 2 {
                    out.push(self.step(dims, d, -1));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip() {
        let dims = TorusDims::new(4, 3, 2);
        for i in 0..dims.node_count() {
            let c = dims.delinearize(i);
            assert!(dims.contains(c));
            assert_eq!(dims.linearize(c), i);
        }
    }

    #[test]
    fn axis_distance_wraps() {
        assert_eq!(TorusDims::axis_distance(8, 0, 7), 1);
        assert_eq!(TorusDims::axis_distance(8, 1, 5), 4);
        assert_eq!(TorusDims::axis_distance(8, 2, 2), 0);
        assert_eq!(TorusDims::axis_distance(5, 0, 3), 2);
    }

    #[test]
    fn axis_step_takes_shorter_way() {
        assert_eq!(TorusDims::axis_step(8, 0, 7), -1);
        assert_eq!(TorusDims::axis_step(8, 0, 1), 1);
        assert_eq!(TorusDims::axis_step(8, 3, 3), 0);
        // Exactly half way: tie goes +1.
        assert_eq!(TorusDims::axis_step(8, 0, 4), 1);
    }

    #[test]
    fn step_wraps_both_directions() {
        let dims = TorusDims::new(4, 4, 4);
        let c = Coord3::new(3, 0, 2);
        assert_eq!(c.step(dims, 0, 1), Coord3::new(0, 0, 2));
        assert_eq!(c.step(dims, 1, -1), Coord3::new(3, 3, 2));
    }

    #[test]
    fn neighbors_full_torus() {
        let dims = TorusDims::new(4, 4, 4);
        let n = Coord3::new(1, 1, 1).neighbors(dims);
        assert_eq!(n.len(), 6);
        // All at hop distance 1.
        for nb in n {
            let d = TorusDims::axis_distance(4, 1, nb.x)
                + TorusDims::axis_distance(4, 1, nb.y)
                + TorusDims::axis_distance(4, 1, nb.z);
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn neighbors_degenerate_dims() {
        // z extent 1: no z links. y extent 2: single y neighbour.
        let dims = TorusDims::new(4, 2, 1);
        let n = Coord3::new(0, 0, 0).neighbors(dims);
        assert_eq!(n.len(), 3); // +x, -x, +y(==-y)
    }

    #[test]
    fn node_count() {
        assert_eq!(TorusDims::new(64, 32, 32).node_count(), 65536);
        assert_eq!(TorusDims::new(32, 32, 32).node_count(), 32768);
    }

    #[test]
    fn iter_covers_all_nodes() {
        let dims = TorusDims::new(3, 2, 2);
        let all: Vec<_> = dims.iter().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        TorusDims::new(0, 4, 4);
    }
}
