//! Dimension-ordered (e-cube) routing on the 3D torus.
//!
//! BlueGene/L's torus network uses adaptive routing in hardware, but for
//! cost modelling the standard deterministic approximation is
//! dimension-ordered routing: resolve the X offset first, then Y, then Z,
//! always taking the shorter way around each ring. Hop counts (which is
//! what the α–β–hop model consumes) are identical for any minimal route.

use crate::coord::{Coord3, TorusDims};

/// One hop of a route: the link from `from` to `to` (nearest neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteStep {
    /// Source node of this hop.
    pub from: Coord3,
    /// Destination node of this hop.
    pub to: Coord3,
    /// Dimension travelled (0 = x, 1 = y, 2 = z).
    pub dim: usize,
    /// Direction travelled (+1 or -1).
    pub dir: isize,
}

/// Minimal hop distance between two nodes in the torus (Manhattan
/// distance with per-dimension wrap-around).
pub fn hop_distance(dims: TorusDims, a: Coord3, b: Coord3) -> usize {
    TorusDims::axis_distance(dims.x, a.x, b.x)
        + TorusDims::axis_distance(dims.y, a.y, b.y)
        + TorusDims::axis_distance(dims.z, a.z, b.z)
}

/// Compute the dimension-ordered minimal route from `a` to `b`.
///
/// Returns the sequence of hops; its length equals
/// [`hop_distance`]`(dims, a, b)`. An empty route means `a == b`.
pub fn route_dimension_ordered(dims: TorusDims, a: Coord3, b: Coord3) -> Vec<RouteStep> {
    let mut steps = Vec::with_capacity(hop_distance(dims, a, b));
    let mut cur = a;
    for d in 0..3 {
        let target = b.component(d);
        loop {
            let dir = TorusDims::axis_step(dims.extent(d), cur.component(d), target);
            if dir == 0 {
                break;
            }
            let next = cur.step(dims, d, dir);
            steps.push(RouteStep {
                from: cur,
                to: next,
                dim: d,
                dir,
            });
            cur = next;
        }
    }
    debug_assert_eq!(cur, b);
    steps
}

/// Average hop distance from a node to all other nodes in the torus.
///
/// For a torus ring of even extent `w` the mean one-dimensional distance
/// is `w/4 · w/(w-1)`-ish; we compute it exactly by summation, which is
/// cheap and avoids parity case analysis.
pub fn mean_hop_distance(dims: TorusDims) -> f64 {
    let mean_axis = |w: usize| -> f64 {
        if w <= 1 {
            return 0.0;
        }
        let total: usize = (0..w).map(|d| TorusDims::axis_distance(w, 0, d)).sum();
        total as f64 / w as f64
    };
    mean_axis(dims.x) + mean_axis(dims.y) + mean_axis(dims.z)
}

/// The diameter of the torus: maximal minimal-hop distance between any
/// two nodes (`⌊x/2⌋ + ⌊y/2⌋ + ⌊z/2⌋`).
pub fn diameter(dims: TorusDims) -> usize {
    dims.x / 2 + dims.y / 2 + dims.z / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_length_equals_hop_distance() {
        let dims = TorusDims::new(8, 4, 4);
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(7, 2, 3);
        let route = route_dimension_ordered(dims, a, b);
        assert_eq!(route.len(), hop_distance(dims, a, b));
        // Wrapping: 0->7 in x is 1 hop the short way.
        assert_eq!(hop_distance(dims, a, b), 1 + 2 + 1);
    }

    #[test]
    fn route_is_contiguous_and_arrives() {
        let dims = TorusDims::new(6, 6, 6);
        let a = Coord3::new(1, 5, 0);
        let b = Coord3::new(4, 0, 3);
        let route = route_dimension_ordered(dims, a, b);
        let mut cur = a;
        for step in &route {
            assert_eq!(step.from, cur);
            assert_eq!(hop_distance(dims, step.from, step.to), 1);
            cur = step.to;
        }
        assert_eq!(cur, b);
    }

    #[test]
    fn route_to_self_is_empty() {
        let dims = TorusDims::new(4, 4, 4);
        let a = Coord3::new(2, 2, 2);
        assert!(route_dimension_ordered(dims, a, a).is_empty());
        assert_eq!(hop_distance(dims, a, a), 0);
    }

    #[test]
    fn route_is_dimension_ordered() {
        let dims = TorusDims::new(8, 8, 8);
        let route = route_dimension_ordered(dims, Coord3::new(0, 0, 0), Coord3::new(3, 3, 3));
        let dims_seq: Vec<usize> = route.iter().map(|s| s.dim).collect();
        let mut sorted = dims_seq.clone();
        sorted.sort_unstable();
        assert_eq!(dims_seq, sorted, "hops must resolve x, then y, then z");
    }

    #[test]
    fn diameter_of_bgl() {
        // Full BlueGene/L: 64x32x32 => 32+16+16 = 64 hops.
        assert_eq!(diameter(TorusDims::new(64, 32, 32)), 64);
        assert_eq!(diameter(TorusDims::new(32, 32, 32)), 48);
    }

    #[test]
    fn mean_hop_distance_ring() {
        // Ring of 4: distances 0,1,2,1 -> mean 1.0 per axis.
        let d = mean_hop_distance(TorusDims::new(4, 1, 1));
        assert!((d - 1.0).abs() < 1e-12);
    }
}
