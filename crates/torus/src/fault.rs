//! Deterministic fault model for the torus substrate.
//!
//! At 32,768 nodes, component failure is an operating condition, not an
//! exception. A [`FaultPlan`] describes, *reproducibly*, everything that
//! goes wrong during a run:
//!
//! * **dead links** — bi-directional torus links that carry no traffic;
//!   routes must detour around them ([`route_with_faults`]);
//! * **dead nodes** — torus nodes that neither route nor host a rank;
//! * **degraded links** — links running at a fraction of nominal
//!   bandwidth (the cost model charges the slowest link on the route);
//! * **message faults** — per-attempt drop / duplicate / truncate
//!   probabilities, decided by a pure hash of
//!   `(seed, class, round, from, to, attempt)` so both the superstep
//!   simulator and the threaded runtime compute the *same* fault
//!   schedule with no shared RNG stream;
//! * **rank deaths** — ranks scheduled to die at a given exchange round,
//!   driving the checkpoint/recovery path in `bfs-core`.
//!
//! Everything is a pure function of the plan: two runs with the same
//! `(seed, FaultPlan)` observe identical faults, which is what makes the
//! recovery path testable bit-for-bit against a fault-free oracle.

use crate::coord::{Coord3, TorusDims};
use crate::routing::{hop_distance, route_dimension_ordered, RouteStep};
use std::collections::VecDeque;

/// SplitMix64 finalizer: the same mixer `bgl-graph` uses for per-cell
/// seeds, reused here so fault decisions are cheap, stateless hashes.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_DROP: u64 = 0xD509;
const SALT_DUP: u64 = 0xD0B1;
const SALT_TRUNC: u64 = 0x7A0C;
const SALT_CHAOS_DEATH: u64 = 0xDEAD;
const SALT_CHAOS_PROB: u64 = 0xC405;
const SALT_CHAOS_LINK: u64 = 0x11CC;

/// The message-class index the communication layer assigns to control
/// traffic (checkpoint parity updates, recovery transfers). Fault
/// decisions are keyed by class, so control faults — when a runtime
/// opts in to a faulty control channel — draw from an independent
/// hash stream and can carry their own probabilities.
pub const CONTROL_CLASS: u8 = 2;

/// Normalize an undirected link so `(a, b)` and `(b, a)` compare equal.
fn norm_link(a: Coord3, b: Coord3) -> (Coord3, Coord3) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A scheduled rank death: the rank stops participating at the start of
/// exchange round `at_round` (counted per message class by the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDeath {
    /// The rank that dies.
    pub rank: usize,
    /// The global data-exchange round at which it dies.
    pub at_round: u64,
}

/// A deterministic, seeded description of every fault in a run.
///
/// `FaultPlan::none()` (also `Default`) injects nothing and is guaranteed
/// zero-overhead: runtimes skip all fault bookkeeping when
/// [`FaultPlan::is_active`] is false.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all probabilistic fault decisions.
    pub seed: u64,
    /// Per-attempt probability that a message is dropped in transit.
    pub drop_prob: f64,
    /// Per-attempt probability that a delivered message is duplicated
    /// (the duplicate is detected and discarded by the receiver, but is
    /// counted and, in the simulator, charged).
    pub duplicate_prob: f64,
    /// Per-attempt probability that a message arrives truncated (the
    /// receiver detects the short payload and the sender retransmits).
    pub truncate_prob: f64,
    /// Maximum delivery attempts per message before the link is declared
    /// unreachable.
    pub max_attempts: u32,
    /// Per-attempt drop probability for control-class traffic
    /// ([`CONTROL_CLASS`]), when a runtime routes control messages
    /// through the fault model. `None` falls back to [`drop_prob`]: a
    /// lossy fabric is lossy for recovery traffic too.
    ///
    /// [`drop_prob`]: FaultPlan::drop_prob
    pub control_drop_prob: Option<f64>,
    /// Control-class duplicate probability override (see
    /// [`control_drop_prob`]).
    ///
    /// [`control_drop_prob`]: FaultPlan::control_drop_prob
    pub control_duplicate_prob: Option<f64>,
    /// Control-class truncation probability override (see
    /// [`control_drop_prob`]).
    ///
    /// [`control_drop_prob`]: FaultPlan::control_drop_prob
    pub control_truncate_prob: Option<f64>,
    dead_links: Vec<(Coord3, Coord3)>,
    dead_nodes: Vec<Coord3>,
    degraded: Vec<(Coord3, Coord3, f64)>,
    deaths: Vec<RankDeath>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: injects nothing, costs nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            truncate_prob: 0.0,
            max_attempts: 16,
            control_drop_prob: None,
            control_duplicate_prob: None,
            control_truncate_prob: None,
            dead_links: Vec::new(),
            dead_nodes: Vec::new(),
            degraded: Vec::new(),
            deaths: Vec::new(),
        }
    }

    /// An empty plan carrying a seed for subsequent probabilistic knobs.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::none()
        }
    }

    /// Set the per-attempt message drop probability (builder style).
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_prob = p;
        self
    }

    /// Set the per-attempt duplicate probability (builder style).
    pub fn with_duplicate_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability must be in [0,1]"
        );
        self.duplicate_prob = p;
        self
    }

    /// Set the per-attempt truncation probability (builder style).
    pub fn with_truncate_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "truncate probability must be in [0,1]"
        );
        self.truncate_prob = p;
        self
    }

    /// Override the per-attempt drop probability for control-class
    /// traffic only (builder style). Lets tests make the recovery
    /// channel lossy while the data fabric stays clean, or vice versa.
    pub fn with_control_drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "control drop probability must be in [0,1]"
        );
        self.control_drop_prob = Some(p);
        self
    }

    /// Override the control-class duplicate probability (builder style).
    pub fn with_control_duplicate_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "control duplicate probability must be in [0,1]"
        );
        self.control_duplicate_prob = Some(p);
        self
    }

    /// Override the control-class truncation probability (builder style).
    pub fn with_control_truncate_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "control truncate probability must be in [0,1]"
        );
        self.control_truncate_prob = Some(p);
        self
    }

    /// Kill the bi-directional link between two (adjacent) nodes.
    pub fn kill_link(mut self, a: Coord3, b: Coord3) -> Self {
        let l = norm_link(a, b);
        if !self.dead_links.contains(&l) {
            self.dead_links.push(l);
        }
        self
    }

    /// Kill a torus node: no traffic routes through it.
    pub fn kill_node(mut self, node: Coord3) -> Self {
        if !self.dead_nodes.contains(&node) {
            self.dead_nodes.push(node);
        }
        self
    }

    /// Degrade the bi-directional link between `a` and `b` to `factor`
    /// of nominal bandwidth (`0 < factor <= 1`).
    pub fn degrade_link(mut self, a: Coord3, b: Coord3, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "bandwidth factor must be in (0,1], got {factor}"
        );
        let (a, b) = norm_link(a, b);
        self.degraded.push((a, b, factor));
        self
    }

    /// Schedule `rank` to die at data-exchange round `at_round`.
    pub fn kill_rank_at(mut self, rank: usize, at_round: u64) -> Self {
        self.deaths.push(RankDeath { rank, at_round });
        self.deaths.sort_by_key(|d| (d.at_round, d.rank));
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.has_message_faults() || self.has_topology_faults() || self.has_deaths()
    }

    /// Whether any per-message probabilistic fault is enabled, on
    /// either the data or the control channel.
    pub fn has_message_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.truncate_prob > 0.0
            || self.control_drop_prob.unwrap_or(0.0) > 0.0
            || self.control_duplicate_prob.unwrap_or(0.0) > 0.0
            || self.control_truncate_prob.unwrap_or(0.0) > 0.0
    }

    /// The effective probability for `class`: the control override when
    /// the class is control traffic and one is set, the base otherwise.
    #[inline]
    fn class_prob(&self, class: u8, base: f64, control: Option<f64>) -> f64 {
        if class == CONTROL_CLASS {
            control.unwrap_or(base)
        } else {
            base
        }
    }

    /// Whether any link or node is dead or degraded.
    pub fn has_topology_faults(&self) -> bool {
        !self.dead_links.is_empty() || !self.dead_nodes.is_empty() || !self.degraded.is_empty()
    }

    /// Whether any rank death is scheduled.
    pub fn has_deaths(&self) -> bool {
        !self.deaths.is_empty()
    }

    /// The scheduled rank deaths, ordered by round.
    pub fn deaths(&self) -> &[RankDeath] {
        &self.deaths
    }

    /// Ranks scheduled to die at exactly round `round`.
    pub fn deaths_at(&self, round: u64) -> impl Iterator<Item = usize> + '_ {
        self.deaths
            .iter()
            .filter(move |d| d.at_round == round)
            .map(|d| d.rank)
    }

    /// Whether the (undirected) link between `a` and `b` is dead, either
    /// explicitly or because an endpoint node is dead.
    pub fn link_is_dead(&self, a: Coord3, b: Coord3) -> bool {
        self.dead_links.contains(&norm_link(a, b)) || self.node_is_dead(a) || self.node_is_dead(b)
    }

    /// Whether a torus node is dead.
    pub fn node_is_dead(&self, node: Coord3) -> bool {
        self.dead_nodes.contains(&node)
    }

    /// Bandwidth factor of the (undirected) link between `a` and `b`:
    /// 1.0 if not degraded, the smallest configured factor otherwise.
    pub fn link_bandwidth_factor(&self, a: Coord3, b: Coord3) -> f64 {
        let key = norm_link(a, b);
        self.degraded
            .iter()
            .filter(|(x, y, _)| (*x, *y) == key)
            .map(|&(_, _, f)| f)
            .fold(1.0, f64::min)
    }

    /// Smallest bandwidth factor along a route (1.0 for an empty route).
    pub fn route_bandwidth_factor(&self, route: &[RouteStep]) -> f64 {
        route
            .iter()
            .map(|s| self.link_bandwidth_factor(s.from, s.to))
            .fold(1.0, f64::min)
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        salt: u64,
        class: u8,
        round: u64,
        from: u64,
        to: u64,
        attempt: u32,
        p: f64,
    ) -> bool {
        if p <= 0.0 {
            return false;
        }
        let mut h = mix(self.seed ^ salt);
        h = mix(h ^ (class as u64) ^ round.rotate_left(17));
        h = mix(h ^ from.rotate_left(31) ^ to);
        h = mix(h ^ attempt as u64);
        unit(h) < p
    }

    /// Whether delivery attempt `attempt` of the message `(class, round,
    /// from, to)` is dropped in transit. Pure: any runtime evaluating
    /// this for the same plan sees the same answer.
    pub fn drops(&self, class: u8, round: u64, from: usize, to: usize, attempt: u32) -> bool {
        self.decide(
            SALT_DROP,
            class,
            round,
            from as u64,
            to as u64,
            attempt,
            self.class_prob(class, self.drop_prob, self.control_drop_prob),
        )
    }

    /// Whether the (delivered) attempt also produces a spurious duplicate.
    pub fn duplicates(&self, class: u8, round: u64, from: usize, to: usize, attempt: u32) -> bool {
        self.decide(
            SALT_DUP,
            class,
            round,
            from as u64,
            to as u64,
            attempt,
            self.class_prob(class, self.duplicate_prob, self.control_duplicate_prob),
        )
    }

    /// Whether the attempt arrives truncated (detected; forces a
    /// retransmission like a drop, but the garbled bytes did transit).
    pub fn truncates(&self, class: u8, round: u64, from: usize, to: usize, attempt: u32) -> bool {
        self.decide(
            SALT_TRUNC,
            class,
            round,
            from as u64,
            to as u64,
            attempt,
            self.class_prob(class, self.truncate_prob, self.control_truncate_prob),
        )
    }

    /// The delivery schedule for one message under the ack/retransmit
    /// protocol: returns `(attempts, duplicated)` where `attempts` is the
    /// 1-based index of the first attempt that transits intact (an
    /// `Err` holds `max_attempts` if none does), and `duplicated` is
    /// whether the successful attempt spawned a spurious duplicate.
    ///
    /// Attempt `k` fails if it is dropped or truncated. Every failed
    /// attempt costs a retransmission; the runtimes charge those through
    /// the cost model and count them in `CommStats`.
    pub fn delivery(&self, class: u8, round: u64, from: usize, to: usize) -> Result<Delivery, u32> {
        if !self.has_message_faults() {
            return Ok(Delivery {
                attempts: 1,
                truncated_attempts: 0,
                duplicated: false,
            });
        }
        let mut truncated = 0;
        for attempt in 1..=self.max_attempts {
            let dropped = self.drops(class, round, from, to, attempt);
            let trunc = !dropped && self.truncates(class, round, from, to, attempt);
            if trunc {
                truncated += 1;
            }
            if !dropped && !trunc {
                return Ok(Delivery {
                    attempts: attempt,
                    truncated_attempts: truncated,
                    duplicated: self.duplicates(class, round, from, to, attempt),
                });
            }
        }
        Err(self.max_attempts)
    }

    /// Build a seeded randomized plan for chaos testing: at most one
    /// scheduled rank death per parity group of `group_size` consecutive
    /// ranks, hash-derived drop/truncate/duplicate probabilities below
    /// the spec's caps, and (optionally) one dead torus link. Pure in
    /// `(spec.seed, spec)` — the same spec always yields the same plan,
    /// so every chaos failure reproduces from its seed alone.
    pub fn chaos(spec: &ChaosSpec) -> FaultPlan {
        let s = spec.seed;
        let frac = |salt: u64, idx: u64| unit(mix(mix(s ^ salt) ^ idx));
        let mut plan = FaultPlan::seeded(s)
            .with_drop_prob(frac(SALT_CHAOS_PROB, 1) * spec.drop_prob_max)
            .with_truncate_prob(frac(SALT_CHAOS_PROB, 2) * spec.truncate_prob_max)
            .with_duplicate_prob(frac(SALT_CHAOS_PROB, 3) * spec.duplicate_prob_max);

        // One candidate death per parity group. Groups mirror
        // `bfs-core`'s layout: consecutive ranks, the remainder merged
        // into the last group, so a single death per group is always
        // reconstructible from the surviving members plus the shard.
        let g = spec.group_size.max(2);
        let groups = (spec.ranks / g).max(1);
        for group in 0..groups {
            if frac(SALT_CHAOS_DEATH, group as u64) >= spec.death_prob {
                continue;
            }
            let start = group * g;
            let end = if group + 1 == groups {
                spec.ranks
            } else {
                start + g
            };
            let h = mix(mix(s ^ SALT_CHAOS_DEATH) ^ (group as u64).rotate_left(23));
            let victim = start + (h as usize % (end - start));
            let round = 1 + (h >> 32) % spec.max_round.max(1);
            plan = plan.kill_rank_at(victim, round);
        }

        // Optionally kill one torus link; BFS detour routing absorbs it
        // unless the machine is degenerate (then the run surfaces a
        // typed `NoRoute`, which chaos consumers treat as an outcome).
        if let Some(dims) = spec.dims {
            if frac(SALT_CHAOS_LINK, 0) < spec.dead_link_prob {
                let h = mix(mix(s ^ SALT_CHAOS_LINK) ^ 1);
                let a = dims.delinearize(h as usize % dims.node_count());
                for d in 0..3 {
                    if dims.extent(d) > 1 {
                        let b = a.step(dims, d, 1);
                        plan = plan.kill_link(a, b);
                        break;
                    }
                }
            }
        }
        plan
    }
}

/// Parameters for [`FaultPlan::chaos`]: the randomized-fault envelope a
/// chaos sweep draws plans from.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed for every hash-derived choice below.
    pub seed: u64,
    /// World size (ranks eligible to die).
    pub ranks: usize,
    /// Parity-group size the death schedule respects (at most one death
    /// per group of consecutive ranks).
    pub group_size: usize,
    /// Per-group probability that a death is scheduled.
    pub death_prob: f64,
    /// Death rounds are drawn from `1..=max_round`.
    pub max_round: u64,
    /// Upper bound on the hash-derived per-attempt drop probability.
    pub drop_prob_max: f64,
    /// Upper bound on the truncation probability.
    pub truncate_prob_max: f64,
    /// Upper bound on the duplicate probability.
    pub duplicate_prob_max: f64,
    /// Probability of killing one torus link (needs `dims`).
    pub dead_link_prob: f64,
    /// Torus dimensions for link faults (`None` = no link faults).
    pub dims: Option<TorusDims>,
}

impl ChaosSpec {
    /// A moderate envelope: one death per group likely, lossy links up
    /// to 20% drop, occasional dead link.
    pub fn moderate(seed: u64, ranks: usize, group_size: usize) -> Self {
        Self {
            seed,
            ranks,
            group_size,
            death_prob: 0.75,
            max_round: 8,
            drop_prob_max: 0.2,
            truncate_prob_max: 0.05,
            duplicate_prob_max: 0.05,
            dead_link_prob: 0.0,
            dims: None,
        }
    }

    /// Builder-style: enable dead-link faults on a machine of `dims`.
    pub fn with_link_faults(mut self, dims: TorusDims, prob: f64) -> Self {
        self.dims = Some(dims);
        self.dead_link_prob = prob;
        self
    }
}

/// Outcome of [`FaultPlan::delivery`] for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// 1-based index of the successful attempt (1 = no retransmission).
    pub attempts: u32,
    /// How many of the failed attempts were truncations (bytes that
    /// transited the wire before being rejected).
    pub truncated_attempts: u32,
    /// Whether the successful attempt spawned a spurious duplicate.
    pub duplicated: bool,
}

/// Routing failed: no live path exists between the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Isolated {
    /// Route source.
    pub from: Coord3,
    /// Route destination.
    pub to: Coord3,
}

impl std::fmt::Display for Isolated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no live route from {:?} to {:?}: dead links isolate the endpoints",
            self.from, self.to
        )
    }
}

impl std::error::Error for Isolated {}

/// Route from `a` to `b` avoiding dead links and nodes.
///
/// With no topology faults this is exactly dimension-ordered routing.
/// Otherwise a breadth-first search over live links finds a *shortest
/// detour* (deterministic tie-breaking by dimension order), so the extra
/// cost charged for the fault is minimal, mirroring the torus hardware's
/// adaptive routing around failed links. Returns [`Isolated`] when the
/// fault set disconnects the endpoints (or an endpoint node is dead).
pub fn route_with_faults(
    dims: TorusDims,
    a: Coord3,
    b: Coord3,
    plan: &FaultPlan,
) -> Result<Vec<RouteStep>, Isolated> {
    if !plan.has_topology_faults() {
        return Ok(route_dimension_ordered(dims, a, b));
    }
    if plan.node_is_dead(a) || plan.node_is_dead(b) {
        return Err(Isolated { from: a, to: b });
    }
    if a == b {
        return Ok(Vec::new());
    }
    // Fast path: if the dimension-ordered route is entirely live, use it.
    let dor = route_dimension_ordered(dims, a, b);
    if dor
        .iter()
        .all(|s| !plan.link_is_dead(s.from, s.to) && !plan.node_is_dead(s.to))
    {
        return Ok(dor);
    }

    // Shortest detour: BFS over live links, neighbours visited in
    // (dimension, +1 before -1) order for determinism.
    let n = dims.node_count();
    let mut prev: Vec<Option<(usize, usize, isize)>> = vec![None; n]; // (pred idx, dim, dir)
    let mut seen = vec![false; n];
    let start = dims.linearize(a);
    let goal = dims.linearize(b);
    seen[start] = true;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(ci) = queue.pop_front() {
        if ci == goal {
            break;
        }
        let cur = dims.delinearize(ci);
        for d in 0..3 {
            let extent = dims.extent(d);
            if extent <= 1 {
                continue;
            }
            for dir in [1isize, -1] {
                if dir == -1 && extent <= 2 {
                    continue; // +1 already reaches the only neighbour
                }
                let nb = cur.step(dims, d, dir);
                let ni = dims.linearize(nb);
                if seen[ni] || plan.node_is_dead(nb) || plan.link_is_dead(cur, nb) {
                    continue;
                }
                seen[ni] = true;
                prev[ni] = Some((ci, d, dir));
                queue.push_back(ni);
            }
        }
    }
    if !seen[goal] {
        return Err(Isolated { from: a, to: b });
    }
    let mut steps = Vec::new();
    let mut ci = goal;
    while ci != start {
        // bgl-lint: allow(r1, reason = "seen[goal] above proves BFS reached goal, so every node on the chain has a recorded parent")
        let (pi, dim, dir) = prev[ci].expect("BFS parent chain broken");
        steps.push(RouteStep {
            from: dims.delinearize(pi),
            to: dims.delinearize(ci),
            dim,
            dir,
        });
        ci = pi;
    }
    steps.reverse();
    Ok(steps)
}

/// Extra hops a faulty route takes beyond the minimal distance.
pub fn detour_hops(dims: TorusDims, route: &[RouteStep]) -> usize {
    if route.is_empty() {
        return 0;
    }
    let a = route[0].from;
    let b = route[route.len() - 1].to;
    route.len().saturating_sub(hop_distance(dims, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims4() -> TorusDims {
        TorusDims::new(4, 4, 4)
    }

    #[test]
    fn none_is_inactive_and_free() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(
            p.delivery(0, 0, 1, 2),
            Ok(Delivery {
                attempts: 1,
                truncated_attempts: 0,
                duplicated: false
            })
        );
        assert!(!p.drops(0, 0, 1, 2, 1));
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::seeded(7).with_drop_prob(0.5);
        let b = FaultPlan::seeded(7).with_drop_prob(0.5);
        let c = FaultPlan::seeded(8).with_drop_prob(0.5);
        let mut same_ab = 0;
        let mut same_ac = 0;
        let total = 2000;
        for i in 0..total {
            let x = a.drops(1, i, 3, 5, 1);
            if x == b.drops(1, i, 3, 5, 1) {
                same_ab += 1;
            }
            if x == c.drops(1, i, 3, 5, 1) {
                same_ac += 1;
            }
        }
        assert_eq!(same_ab, total, "same seed must agree everywhere");
        assert!(same_ac < total, "different seeds must diverge somewhere");
    }

    #[test]
    fn drop_rate_close_to_probability() {
        let p = FaultPlan::seeded(42).with_drop_prob(0.2);
        let total = 20_000;
        let dropped = (0..total).filter(|&i| p.drops(0, i, 0, 1, 1)).count();
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn delivery_counts_failed_attempts() {
        let p = FaultPlan::seeded(11).with_drop_prob(0.5);
        let mut retransmissions = 0u32;
        let mut failures = 0u32;
        for round in 0..500 {
            match p.delivery(0, round, 2, 3) {
                Ok(d) => retransmissions += d.attempts - 1,
                Err(_) => failures += 1,
            }
        }
        assert!(retransmissions > 100, "retransmissions={retransmissions}");
        // With max_attempts=16 and p=0.5, total failure is ~1.5e-5 per
        // message; 500 messages should essentially never exhaust.
        assert_eq!(failures, 0);
    }

    #[test]
    fn delivery_exhausts_at_probability_one() {
        let p = FaultPlan::seeded(1).with_drop_prob(1.0);
        assert_eq!(p.delivery(0, 0, 0, 1), Err(16));
    }

    #[test]
    fn dead_link_forces_detour() {
        let dims = dims4();
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(1, 0, 0);
        let plan = FaultPlan::none().kill_link(a, b);
        let route = route_with_faults(dims, a, b, &plan).unwrap();
        // Direct link is dead: shortest detour is 3 hops (e.g. via y).
        assert_eq!(route.len(), 3);
        assert_eq!(detour_hops(dims, &route), 2);
        assert_eq!(route[0].from, a);
        assert_eq!(route[route.len() - 1].to, b);
        for s in &route {
            assert!(!plan.link_is_dead(s.from, s.to));
            assert_eq!(hop_distance(dims, s.from, s.to), 1);
        }
    }

    #[test]
    fn dead_node_is_routed_around() {
        let dims = dims4();
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(2, 0, 0);
        let plan = FaultPlan::none().kill_node(Coord3::new(1, 0, 0));
        let route = route_with_faults(dims, a, b, &plan).unwrap();
        assert!(route.iter().all(|s| s.to != Coord3::new(1, 0, 0)));
        assert_eq!(route[route.len() - 1].to, b);
        // x-ring of 4: 0->3->2 also works in 2 hops; BFS finds length 2.
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn isolated_endpoint_reported() {
        // 1D ring of 4 in x: killing both links around node 1 isolates it.
        let dims = TorusDims::new(4, 1, 1);
        let n1 = Coord3::new(1, 0, 0);
        let plan = FaultPlan::none()
            .kill_link(Coord3::new(0, 0, 0), n1)
            .kill_link(n1, Coord3::new(2, 0, 0));
        let err = route_with_faults(dims, Coord3::new(0, 0, 0), n1, &plan).unwrap_err();
        assert_eq!(err.from, Coord3::new(0, 0, 0));
        assert_eq!(err.to, n1);
    }

    #[test]
    fn dead_endpoint_node_is_isolated() {
        let dims = dims4();
        let b = Coord3::new(1, 1, 1);
        let plan = FaultPlan::none().kill_node(b);
        assert!(route_with_faults(dims, Coord3::new(0, 0, 0), b, &plan).is_err());
    }

    #[test]
    fn no_topology_faults_matches_dimension_ordered() {
        let dims = dims4();
        let plan = FaultPlan::seeded(3).with_drop_prob(0.1); // message faults only
        for (ai, bi) in [(0usize, 63usize), (5, 40), (17, 17)] {
            let a = dims.delinearize(ai);
            let b = dims.delinearize(bi);
            assert_eq!(
                route_with_faults(dims, a, b, &plan).unwrap(),
                route_dimension_ordered(dims, a, b)
            );
        }
    }

    #[test]
    fn degraded_link_factor_on_route() {
        let dims = dims4();
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(2, 0, 0);
        let mid = Coord3::new(1, 0, 0);
        let plan = FaultPlan::none().degrade_link(mid, b, 0.25);
        let route = route_with_faults(dims, a, b, &plan).unwrap();
        assert_eq!(route.len(), 2);
        assert!((plan.route_bandwidth_factor(&route) - 0.25).abs() < 1e-12);
        // Unrelated link unaffected.
        assert_eq!(plan.link_bandwidth_factor(a, mid), 1.0);
    }

    #[test]
    fn deaths_are_ordered_and_queryable() {
        let plan = FaultPlan::none().kill_rank_at(3, 10).kill_rank_at(1, 4);
        assert_eq!(
            plan.deaths(),
            &[
                RankDeath {
                    rank: 1,
                    at_round: 4
                },
                RankDeath {
                    rank: 3,
                    at_round: 10
                }
            ]
        );
        assert_eq!(plan.deaths_at(4).collect::<Vec<_>>(), vec![1]);
        assert_eq!(plan.deaths_at(5).count(), 0);
        assert!(plan.has_deaths() && plan.is_active());
    }

    #[test]
    fn detour_route_is_shortest_available() {
        // Kill the whole +x/-x first column of links out of the origin's
        // x-line and verify BFS still finds a minimal live path.
        let dims = dims4();
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(3, 0, 0); // 1 hop the short way (wrap)
        let plan = FaultPlan::none().kill_link(a, b);
        let route = route_with_faults(dims, a, b, &plan).unwrap();
        // Short way dead: either 3 hops through x, or 3 via a side step.
        assert_eq!(route.len(), 3);
    }

    #[test]
    fn control_probabilities_default_to_data_probabilities() {
        // Without overrides the control class sees the same lossiness as
        // data traffic: a fully lossy fabric is lossy for everyone.
        let plan = FaultPlan::seeded(9).with_drop_prob(1.0);
        assert!(plan.drops(2, 0, 0, 1, 0));
        // An override decouples them.
        let clean = plan.clone().with_control_drop_prob(0.0);
        assert!(!clean.drops(2, 0, 0, 1, 0));
        assert!(clean.drops(0, 0, 0, 1, 0), "data class still lossy");
        // Control-only faults make the plan active.
        let ctl = FaultPlan::seeded(9).with_control_drop_prob(0.5);
        assert!(ctl.has_message_faults() && ctl.is_active());
        assert!(!ctl.drops(0, 0, 0, 1, 0), "data class stays clean");
    }

    #[test]
    fn chaos_plans_are_deterministic_and_group_disjoint() {
        let spec = ChaosSpec::moderate(41, 12, 3);
        let a = FaultPlan::chaos(&spec);
        let b = FaultPlan::chaos(&spec);
        assert_eq!(a, b, "same spec must yield the same plan");
        assert!(a.drop_prob <= spec.drop_prob_max);
        assert!(a.truncate_prob <= spec.truncate_prob_max);
        // At most one death per group of 3 consecutive ranks.
        for group in 0..4 {
            let in_group = a.deaths().iter().filter(|d| d.rank / 3 == group).count();
            assert!(in_group <= 1, "group {group} has {in_group} deaths");
        }
        // Different seeds explore different schedules.
        let c = FaultPlan::chaos(&ChaosSpec::moderate(42, 12, 3));
        assert_ne!(a, c);
    }

    #[test]
    fn chaos_link_faults_target_live_links() {
        let dims = dims4();
        let spec = ChaosSpec {
            dead_link_prob: 1.0,
            dims: Some(dims),
            ..ChaosSpec::moderate(7, 8, 4)
        };
        let plan = FaultPlan::chaos(&spec);
        assert!(plan.has_topology_faults());
        // Routing still detours around the single dead link.
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(2, 1, 1);
        assert!(route_with_faults(dims, a, b, &plan).is_ok());
    }
}
