//! Property-based invariants of the torus model: metric axioms of the
//! hop distance, route validity, and task-mapping injectivity.

use bgl_torus::{
    hop_distance, route_dimension_ordered, LogicalArray, TaskMapping, TaskMappingKind, TorusDims,
};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = TorusDims> {
    (1usize..9, 1usize..9, 1usize..9).prop_map(|(x, y, z)| TorusDims::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn distance_is_a_metric(dims in dims_strategy(), seed in any::<u64>()) {
        let pick = |s: u64| {
            let i = (s % dims.node_count() as u64) as usize;
            dims.delinearize(i)
        };
        let (a, b, c) = (pick(seed), pick(seed >> 16), pick(seed >> 32));
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(hop_distance(dims, a, a), 0);
        prop_assert_eq!(hop_distance(dims, a, b), hop_distance(dims, b, a));
        prop_assert!(
            hop_distance(dims, a, c)
                <= hop_distance(dims, a, b) + hop_distance(dims, b, c)
        );
    }

    #[test]
    fn routes_are_minimal_and_contiguous(dims in dims_strategy(), seed in any::<u64>()) {
        let a = dims.delinearize((seed % dims.node_count() as u64) as usize);
        let b = dims.delinearize(((seed >> 20) % dims.node_count() as u64) as usize);
        let route = route_dimension_ordered(dims, a, b);
        prop_assert_eq!(route.len(), hop_distance(dims, a, b));
        let mut cur = a;
        for step in &route {
            prop_assert_eq!(step.from, cur);
            prop_assert_eq!(hop_distance(dims, step.from, step.to), 1);
            cur = step.to;
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn linearize_bijective(dims in dims_strategy()) {
        let mut seen = vec![false; dims.node_count()];
        for c in dims.iter() {
            let i = dims.linearize(c);
            prop_assert!(!seen[i]);
            seen[i] = true;
            prop_assert_eq!(dims.delinearize(i), c);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_mappings_injective(
        rows in 1usize..10,
        cols in 1usize..10,
    ) {
        let logical = LogicalArray::new(rows, cols);
        let dims = TaskMapping::paper_torus_for(logical);
        for kind in [
            TaskMappingKind::RowMajor,
            TaskMappingKind::FoldedPlanes,
            TaskMappingKind::Scrambled,
        ] {
            let m = TaskMapping::new(kind, logical, dims);
            let mut coords: Vec<_> = (0..logical.len()).map(|r| m.coord_of(r)).collect();
            coords.sort();
            let before = coords.len();
            coords.dedup();
            prop_assert_eq!(coords.len(), before, "{:?} not injective", kind);
            // Every coordinate is inside the torus.
            for c in coords {
                prop_assert!(dims.contains(c));
            }
        }
    }

    #[test]
    fn ring_cost_nonnegative_and_zero_for_singletons(
        rows in 1usize..8,
        cols in 1usize..8,
    ) {
        let logical = LogicalArray::new(rows, cols);
        let dims = TaskMapping::paper_torus_for(logical);
        let m = TaskMapping::new(TaskMappingKind::FoldedPlanes, logical, dims);
        for col in 0..cols {
            let group = logical.column_group(col);
            let cost = m.ring_hop_cost(&group);
            if group.len() < 2 {
                prop_assert_eq!(cost, 0);
            } else {
                // A ring over g >= 2 distinct nodes moves at least g hops.
                prop_assert!(cost >= group.len());
            }
        }
    }
}
