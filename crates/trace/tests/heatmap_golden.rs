//! Golden-output regression: heatmap JSON is byte-stable.
//!
//! `LinkHeatmap` keys its per-link table with a `BTreeMap`, so the
//! exported rows come out in sorted-key order regardless of insertion
//! order or the process's hash seed. This test pins the exact bytes of
//! `to_json()` for a fixed event set — if the export ever regresses to
//! hash-ordered iteration the comparison fails on the first run whose
//! hasher state differs.

use bgl_torus::{MachineConfig, TaskMapping, TaskMappingKind};
use bgl_trace::event::{EventKind, TraceEvent};
use bgl_trace::LinkHeatmap;

fn send(from: u32, to: u32, bytes: u64) -> TraceEvent {
    TraceEvent {
        kind: EventKind::Send {
            from,
            to,
            bytes,
            hops: 0,
        },
        t0: 0.0,
        t1: 0.0,
    }
}

fn heatmap_from(events: &[TraceEvent]) -> LinkHeatmap {
    let machine = MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(8));
    let mapping = TaskMapping::new(
        TaskMappingKind::FoldedPlanes,
        bgl_torus::LogicalArray::new(2, 4),
        machine.dims,
    );
    LinkHeatmap::from_events(events.iter(), &mapping, &machine)
}

#[test]
fn heatmap_json_is_byte_stable_golden() {
    let events = vec![
        send(0, 5, 100),
        send(3, 1, 64),
        send(7, 2, 8),
        send(5, 0, 100),
    ];
    let hm = heatmap_from(&events);
    let golden = "{\"sends\":4,\"total_bytes\":272,\"links\":[\
{\"from\":[0,0,0],\"to\":[1,0,0],\"bytes\":100},\
{\"from\":[0,1,0],\"to\":[0,0,0],\"bytes\":100},\
{\"from\":[0,1,1],\"to\":[0,0,1],\"bytes\":8},\
{\"from\":[1,0,0],\"to\":[1,1,0],\"bytes\":100},\
{\"from\":[1,0,1],\"to\":[1,0,0],\"bytes\":64},\
{\"from\":[1,1,0],\"to\":[0,1,0],\"bytes\":100},\
{\"from\":[1,1,1],\"to\":[0,1,1],\"bytes\":8}]}";
    assert_eq!(hm.to_json(), golden);
}

#[test]
fn heatmap_json_independent_of_insertion_order() {
    let fwd = vec![send(0, 5, 100), send(3, 1, 64), send(7, 2, 8)];
    let mut rev = fwd.clone();
    rev.reverse();
    assert_eq!(heatmap_from(&fwd).to_json(), heatmap_from(&rev).to_json());
}

#[test]
fn link_traffic_rows_sorted_and_match_heatmap_attribution() {
    use bgl_torus::LinkTraffic;
    let machine = MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(8));
    let mapping = TaskMapping::new(
        TaskMappingKind::FoldedPlanes,
        bgl_torus::LogicalArray::new(2, 4),
        machine.dims,
    );
    let events = vec![send(0, 5, 100), send(3, 1, 64), send(7, 2, 8)];
    let mut lt = LinkTraffic::new();
    for ev in &events {
        let EventKind::Send {
            from, to, bytes, ..
        } = ev.kind
        else {
            unreachable!()
        };
        lt.record(
            &machine,
            mapping.coord_of(from as usize),
            mapping.coord_of(to as usize),
            bytes,
        );
    }
    let hm_rows: Vec<_> = heatmap_from(&events).rows().collect();
    let lt_rows: Vec<_> = lt.rows().collect();
    assert_eq!(hm_rows, lt_rows, "cost-model and trace attribution diverge");
    assert!(
        lt_rows
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
        "rows not in strictly increasing key order"
    );
}
