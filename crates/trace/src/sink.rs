//! The [`TraceSink`] handle the runtimes carry.
//!
//! A disabled sink is a single `None` word: no rings, no heap, and every
//! emit call is one branch that immediately returns. The runtimes hoist
//! `is_enabled()`/`wants_sends()` checks around any work needed *to
//! build* an event (argmax scans, per-send bookkeeping), so a run with
//! tracing off executes the exact same instruction stream it did before
//! the subsystem existed — the zero-allocation test pins this.

use crate::event::{EventKind, Phase, TraceEvent};
use crate::recorder::{TraceBuffer, DEFAULT_RING_CAPACITY};

/// How much detail an enabled sink records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceDetail {
    /// Spans and phase-scope events only (rounds, compute passes,
    /// allreduces, checkpoints, deaths, retransmits).
    Span,
    /// Everything in `Span` plus one event per point-to-point send.
    #[default]
    Event,
}

impl TraceDetail {
    /// Parse a `--trace-level` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "span" => Some(TraceDetail::Span),
            "event" => Some(TraceDetail::Event),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct SinkState {
    detail: TraceDetail,
    buf: TraceBuffer,
}

/// Recorder handle: either disabled (one machine word, allocation-free)
/// or an enabled per-rank ring-buffer recorder.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Box<SinkState>>);

impl TraceSink {
    /// The no-op sink.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// An enabled sink recording `ranks` rank tracks plus a world track,
    /// with the default ring capacity.
    pub fn enabled(ranks: usize, detail: TraceDetail) -> Self {
        Self::enabled_with_capacity(ranks, detail, DEFAULT_RING_CAPACITY)
    }

    /// [`TraceSink::enabled`] with an explicit per-ring capacity.
    pub fn enabled_with_capacity(ranks: usize, detail: TraceDetail, cap: usize) -> Self {
        Self(Some(Box::new(SinkState {
            detail,
            buf: TraceBuffer::new(ranks, cap),
        })))
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Whether per-send events should be built and emitted.
    #[inline]
    pub fn wants_sends(&self) -> bool {
        matches!(&self.0, Some(st) if st.detail == TraceDetail::Event)
    }

    /// The detail level, if enabled.
    pub fn detail(&self) -> Option<TraceDetail> {
        self.0.as_ref().map(|st| st.detail)
    }

    /// Record a world-scoped event over `[t0, t1]`.
    #[inline]
    pub fn world_event(&mut self, kind: EventKind, t0: f64, t1: f64) {
        if let Some(st) = &mut self.0 {
            st.buf.push_world(TraceEvent { kind, t0, t1 });
        }
    }

    /// Record a rank-scoped event over `[t0, t1]`.
    #[inline]
    pub fn rank_event(&mut self, rank: usize, kind: EventKind, t0: f64, t1: f64) {
        if let Some(st) = &mut self.0 {
            st.buf.push_rank(rank, TraceEvent { kind, t0, t1 });
        }
    }

    /// Record a phase span (world-scoped).
    #[inline]
    pub fn span(&mut self, phase: Phase, level: u32, t0: f64, t1: f64) {
        self.world_event(EventKind::Span { phase, level }, t0, t1);
    }

    /// The recorded buffer, if enabled.
    pub fn buffer(&self) -> Option<&TraceBuffer> {
        self.0.as_ref().map(|st| &st.buf)
    }

    /// Take the buffer out, leaving the sink disabled.
    pub fn take_buffer(&mut self) -> Option<TraceBuffer> {
        self.0.take().map(|st| st.buf)
    }

    /// Drop recorded events, keeping the sink enabled and its ring
    /// allocations (used by world resets between measured searches).
    pub fn clear_events(&mut self) {
        if let Some(st) = &mut self.0 {
            st.buf.clear();
        }
    }

    /// Heap capacity currently allocated for events (0 when disabled).
    pub fn allocated(&self) -> usize {
        self.0.as_ref().map_or(0, |st| st.buf.allocated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_one_word_and_allocation_free() {
        let mut s = TraceSink::disabled();
        assert_eq!(
            std::mem::size_of::<TraceSink>(),
            std::mem::size_of::<usize>()
        );
        s.span(Phase::Level, 0, 0.0, 1.0);
        s.world_event(EventKind::TreeAllreduce, 0.0, 0.0);
        assert_eq!(s.allocated(), 0);
        assert!(!s.is_enabled());
        assert!(!s.wants_sends());
        assert!(s.buffer().is_none());
    }

    #[test]
    fn enabled_sink_records_and_clears() {
        let mut s = TraceSink::enabled(2, TraceDetail::Event);
        assert!(s.wants_sends());
        s.span(Phase::Expand, 3, 0.0, 1.0);
        s.rank_event(
            1,
            EventKind::Send {
                from: 1,
                to: 0,
                bytes: 8,
                hops: 1,
            },
            0.1,
            0.2,
        );
        let buf = s.buffer().unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.world_events().len(), 1);
        s.clear_events();
        assert!(s.buffer().unwrap().is_empty());
        assert!(s.is_enabled());
    }

    #[test]
    fn span_detail_suppresses_send_events() {
        let s = TraceSink::enabled(1, TraceDetail::Span);
        assert!(s.is_enabled());
        assert!(!s.wants_sends());
        assert_eq!(s.detail(), Some(TraceDetail::Span));
        assert_eq!(TraceDetail::parse("span"), Some(TraceDetail::Span));
        assert_eq!(TraceDetail::parse("event"), Some(TraceDetail::Event));
        assert_eq!(TraceDetail::parse("bogus"), None);
    }
}
