//! Torus link-utilization heatmap.
//!
//! Replays a trace's point-to-point [`EventKind::Send`] events over the
//! machine's dimension-ordered routes and accumulates bytes per directed
//! physical link — the same attribution rule as the cost model's
//! `LinkTraffic`, so for a fault-free run the heatmap's total equals the
//! α–β–hop accounting's Σ bytes × hops exactly (the acceptance test pins
//! this). On a flat machine every pair is one pseudo-link.
//!
//! Requires event-level detail ([`crate::TraceDetail::Event`]): sends
//! are not recorded at span detail.

use crate::event::{EventKind, TraceEvent};
use bgl_torus::{route_dimension_ordered, Coord3, MachineConfig, MachineKind, TaskMapping};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Bytes accumulated per directed physical link.
///
/// The map is ordered by link coordinates so every export — the
/// hotspot table, [`Self::to_json`], the rows behind the Chrome trace
/// companion file — emits links in sorted-key order and is therefore
/// byte-stable across runs (`HashMap` iteration order would leak the
/// process-random hasher state into the artifacts).
#[derive(Debug, Clone, Default)]
pub struct LinkHeatmap {
    per_link: BTreeMap<(Coord3, Coord3), u64>,
    total_bytes: u64,
    sends: u64,
}

impl LinkHeatmap {
    /// Build a heatmap by routing every send event in `events` through
    /// `machine` using `mapping` to place ranks on nodes.
    pub fn from_events<'a>(
        events: impl IntoIterator<Item = &'a TraceEvent>,
        mapping: &TaskMapping,
        machine: &MachineConfig,
    ) -> Self {
        let mut hm = LinkHeatmap::default();
        for ev in events {
            if let EventKind::Send {
                from, to, bytes, ..
            } = ev.kind
            {
                hm.sends += 1;
                hm.total_bytes += bytes;
                let a = mapping.coord_of(from as usize);
                let b = mapping.coord_of(to as usize);
                match machine.kind {
                    MachineKind::Torus3D => {
                        for step in route_dimension_ordered(machine.dims, a, b) {
                            *hm.per_link.entry((step.from, step.to)).or_insert(0) += bytes;
                        }
                    }
                    MachineKind::Flat => {
                        *hm.per_link.entry((a, b)).or_insert(0) += bytes;
                    }
                }
            }
        }
        hm
    }

    /// Σ over links of accumulated bytes — i.e. Σ over sends of
    /// bytes × hops on a torus.
    pub fn total_bytes_hops(&self) -> u64 {
        self.per_link.values().sum()
    }

    /// Σ over sends of payload bytes (each send counted once).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of send events replayed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Number of distinct directed links touched.
    pub fn links_used(&self) -> usize {
        self.per_link.len()
    }

    /// Bytes on the busiest link.
    pub fn max_link_bytes(&self) -> u64 {
        self.per_link.values().copied().max().unwrap_or(0)
    }

    /// Every link row in sorted-key order: `((from, to), bytes)`.
    pub fn rows(&self) -> impl Iterator<Item = (Coord3, Coord3, u64)> + '_ {
        self.per_link.iter().map(|(&(a, b), &bytes)| (a, b, bytes))
    }

    /// The `k` hottest links, by bytes descending (ties broken by link
    /// coordinates for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(Coord3, Coord3, u64)> {
        let mut links: Vec<(Coord3, Coord3, u64)> = self.rows().collect();
        links.sort_by(|l, r| r.2.cmp(&l.2).then_with(|| (l.0, l.1).cmp(&(r.0, r.1))));
        links.truncate(k);
        links
    }

    /// The heatmap as a JSON document with links in sorted-key order —
    /// byte-stable across runs for identical traces (pinned by a golden
    /// test and written as `TRACE_heatmap.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"sends\":{},\"total_bytes\":{},\"links\":[",
            self.sends, self.total_bytes
        );
        for (i, (a, b, bytes)) in self.rows().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":[{},{},{}],\"to\":[{},{},{}],\"bytes\":{}}}",
                a.x, a.y, a.z, b.x, b.y, b.z, bytes
            );
        }
        out.push_str("]}");
        out
    }

    /// Render the top-`k` hotspot table as aligned text.
    pub fn render_table(&self, k: usize) -> String {
        let mut out = String::new();
        out.push_str("  #  link                          bytes      share\n");
        let total = self.total_bytes_hops().max(1);
        for (i, (a, b, bytes)) in self.top_k(k).into_iter().enumerate() {
            out.push_str(&format!(
                "{:>3}  {:<28} {:>10}  {:>6.2}%\n",
                i + 1,
                format!("({},{},{}) -> ({},{},{})", a.x, a.y, a.z, b.x, b.y, b.z),
                bytes,
                bytes as f64 * 100.0 / total as f64
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::{hop_distance, TaskMappingKind};

    fn send(from: u32, to: u32, bytes: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Send {
                from,
                to,
                bytes,
                hops: 0,
            },
            t0: 0.0,
            t1: 0.0,
        }
    }

    #[test]
    fn total_equals_bytes_times_hops() {
        let machine = MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(8));
        let mapping = TaskMapping::new(
            TaskMappingKind::FoldedPlanes,
            bgl_torus::LogicalArray::new(2, 4),
            machine.dims,
        );
        let events = vec![send(0, 5, 100), send(3, 1, 64), send(7, 2, 8)];
        let hm = LinkHeatmap::from_events(events.iter(), &mapping, &machine);
        let expect: u64 = events
            .iter()
            .map(|ev| {
                let EventKind::Send {
                    from, to, bytes, ..
                } = ev.kind
                else {
                    unreachable!()
                };
                let h = hop_distance(
                    machine.dims,
                    mapping.coord_of(from as usize),
                    mapping.coord_of(to as usize),
                ) as u64;
                bytes * h
            })
            .sum();
        assert_eq!(hm.total_bytes_hops(), expect);
        assert_eq!(hm.sends(), 3);
        assert_eq!(hm.total_bytes(), 172);
        assert!(hm.links_used() > 0);
        assert!(hm.max_link_bytes() >= 100);
    }

    #[test]
    fn top_k_sorts_descending_and_renders() {
        let machine = MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(4));
        let mapping = TaskMapping::new(
            TaskMappingKind::FoldedPlanes,
            bgl_torus::LogicalArray::new(2, 2),
            machine.dims,
        );
        let events = vec![send(0, 1, 10), send(0, 1, 10), send(2, 3, 5)];
        let hm = LinkHeatmap::from_events(events.iter(), &mapping, &machine);
        let top = hm.top_k(10);
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        let table = hm.render_table(5);
        assert!(table.contains("->"));
        assert!(table.contains('%'));
    }
}
