//! One-call trace artifact emission.
//!
//! [`write_artifacts`] turns a recorded [`TraceBuffer`] into the two
//! on-disk consumers — `TRACE_chrome.json` (load in `chrome://tracing`
//! or Perfetto) and `TRACE_summary.json` (the critical-path analysis) —
//! and returns the in-memory analyses for printing. Shared by the CLI,
//! the bench harness and the examples.

use crate::chrome::chrome_trace;
use crate::critical::CriticalPath;
use crate::heatmap::LinkHeatmap;
use crate::recorder::TraceBuffer;
use crate::wire_summary::WireSummary;
use bgl_torus::{MachineConfig, TaskMapping};
use std::path::{Path, PathBuf};

/// What [`write_artifacts`] produced.
#[derive(Debug)]
pub struct TraceReport {
    /// Per-level critical-path analysis.
    pub critical: CriticalPath,
    /// Link-utilization heatmap (empty at span-level detail — sends are
    /// only recorded at event detail).
    pub heatmap: LinkHeatmap,
    /// Logical-vs-wire traffic totals (send bytes empty at span detail).
    pub wire: WireSummary,
    /// Where the Chrome trace was written.
    pub chrome_path: PathBuf,
    /// Where the summary JSON was written.
    pub summary_path: PathBuf,
    /// Where the link heatmap JSON was written.
    pub heatmap_path: PathBuf,
    /// Events overwritten by full rings (0 means the trace is complete).
    pub dropped_events: u64,
}

/// Analyze `buf` and write `TRACE_chrome.json`, `TRACE_summary.json`
/// and `TRACE_heatmap.json` into `dir` (created if missing). The
/// summary document carries the critical path plus a `"wire"` object
/// with logical/wire byte totals, compression ratio and codec time
/// replayed from the recorded events; the heatmap lists per-link bytes
/// in sorted-key order so the file is byte-stable across runs.
pub fn write_artifacts(
    buf: &TraceBuffer,
    mapping: &TaskMapping,
    machine: &MachineConfig,
    dir: &Path,
) -> std::io::Result<TraceReport> {
    std::fs::create_dir_all(dir)?;
    let chrome_path = dir.join("TRACE_chrome.json");
    std::fs::write(&chrome_path, chrome_trace(buf))?;
    let all_events: Vec<_> = buf.events().into_iter().map(|(_, ev)| ev).collect();
    let critical = CriticalPath::analyze(buf);
    let wire = WireSummary::from_events(all_events.iter());
    let summary_path = dir.join("TRACE_summary.json");
    // Splice the wire object into the summary's top-level document so
    // existing consumers of `total_time`/`coverage`/`levels` still parse.
    let mut summary = critical.to_summary_json();
    summary.insert_str(1, &format!("\"wire\":{},", wire.to_json()));
    std::fs::write(&summary_path, summary)?;
    let heatmap = LinkHeatmap::from_events(all_events.iter(), mapping, machine);
    let heatmap_path = dir.join("TRACE_heatmap.json");
    std::fs::write(&heatmap_path, heatmap.to_json())?;
    Ok(TraceReport {
        critical,
        heatmap,
        wire,
        chrome_path,
        summary_path,
        heatmap_path,
        dropped_events: buf.dropped(),
    })
}
