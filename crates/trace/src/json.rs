//! Minimal JSON support: a string-building writer for the exporters and
//! a small recursive-descent parser used by tests and smoke checks to
//! validate what the exporters emit. The workspace builds fully offline
//! with no JSON dependency vendored, and the exported documents are flat
//! and machine-generated, so ~200 lines cover everything needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite f64 as a JSON number. Rust's shortest-roundtrip
/// `Display` for `f64` never produces exponent notation, so the output
/// is always a valid JSON number.
pub fn push_f64(out: &mut String, x: f64) {
    debug_assert!(x.is_finite(), "JSON export of non-finite number");
    let _ = write!(out, "{x}");
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| x.is_finite())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from a &str).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf-8")?;
                // bgl-lint: allow(r1, reason = "the Some(_) arm guarantees the slice is non-empty and from_utf8 just validated it")
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escaped_strings() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd\u{1}");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,{"b":true,"c":null}],"d":"x"}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn f64_writer_emits_valid_numbers() {
        for x in [0.0, 1.5, -2.25e-9, 123456789.125, 1e-7] {
            let mut s = String::new();
            push_f64(&mut s, x);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(x), "{s}");
        }
    }
}
