//! Chrome `trace_event` JSON exporter.
//!
//! Renders a [`TraceBuffer`] into the Trace Event Format consumed by
//! `chrome://tracing` and Perfetto: one process (`pid 0`), one thread
//! track per simulated rank, plus a "world" track carrying spans, rounds
//! and compute passes (whose scope is the whole synchronous machine).
//! Durations use complete events (`"ph":"X"`); instantaneous records
//! (checkpoints, deaths) use instant events (`"ph":"i"`). Timestamps are
//! microseconds on the run's clock.

use crate::event::{EventKind, TraceEvent};
use crate::json::{push_f64, push_str_lit};
use crate::recorder::TraceBuffer;
use std::fmt::Write as _;

/// Render `buf` as a Chrome trace_event JSON document.
pub fn chrome_trace(buf: &TraceBuffer) -> String {
    let ranks = buf.ranks();
    let mut out = String::with_capacity(256 + 160 * buf.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"bgl-bfs\"}}",
    );
    for r in 0..ranks {
        let _ = write!(
            out,
            ",{{\"ph\":\"M\",\"pid\":0,\"tid\":{r},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"rank {r}\"}}}}"
        );
    }
    let _ = write!(
        out,
        ",{{\"ph\":\"M\",\"pid\":0,\"tid\":{ranks},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"world\"}}}}"
    );
    for (track, ev) in buf.events() {
        out.push(',');
        push_event(&mut out, track, &ev);
    }
    out.push_str("]}");
    out
}

fn push_event(out: &mut String, tid: usize, ev: &TraceEvent) {
    let (name, cat): (String, &str) = match ev.kind {
        EventKind::Span { phase, level } => (format!("{} {level}", phase.name()), "span"),
        EventKind::Round { op, .. } => (format!("{} round", op.name()), "round"),
        EventKind::Send { from, to, .. } => (format!("send {from}->{to}"), "send"),
        EventKind::Retransmit { from, to, .. } => (format!("retransmit {from}->{to}"), "fault"),
        EventKind::Compute { comp, .. } => (format!("{} pass", comp.name()), "compute"),
        EventKind::TreeAllreduce => ("tree allreduce".into(), "control"),
        EventKind::Checkpoint { level } => (format!("checkpoint @{level}"), "resilience"),
        EventKind::RankDeath { rank, .. } => (format!("rank {rank} died"), "fault"),
        EventKind::Recovery { rank } => (format!("recover rank {rank}"), "resilience"),
        EventKind::Batch { batch, .. } => (format!("batch {batch}"), "server"),
    };
    let instant = matches!(
        ev.kind,
        EventKind::Checkpoint { .. } | EventKind::RankDeath { .. }
    );
    out.push_str("{\"name\":");
    push_str_lit(out, &name);
    let _ = write!(out, ",\"cat\":\"{cat}\",\"pid\":0,\"tid\":{tid},\"ts\":");
    push_f64(out, ev.t0 * 1e6);
    if instant {
        out.push_str(",\"ph\":\"i\",\"s\":\"g\"");
    } else {
        out.push_str(",\"ph\":\"X\",\"dur\":");
        push_f64(out, ev.duration() * 1e6);
    }
    out.push_str(",\"args\":{");
    match ev.kind {
        EventKind::Span { level, .. } => {
            let _ = write!(out, "\"level\":{level}");
        }
        EventKind::Round {
            messages,
            verts,
            bottleneck,
            ..
        } => {
            let _ = write!(
                out,
                "\"messages\":{messages},\"verts\":{verts},\"bottleneck_rank\":{bottleneck}"
            );
        }
        EventKind::Send { bytes, hops, .. } => {
            let _ = write!(out, "\"bytes\":{bytes},\"hops\":{hops}");
        }
        EventKind::Retransmit { retries, .. } => {
            let _ = write!(out, "\"retries\":{retries}");
        }
        EventKind::Compute { bottleneck, .. } => {
            let _ = write!(out, "\"bottleneck_rank\":{bottleneck}");
        }
        EventKind::TreeAllreduce => {}
        EventKind::Checkpoint { level } => {
            let _ = write!(out, "\"level\":{level}");
        }
        EventKind::RankDeath { round, .. } => {
            let _ = write!(out, "\"round\":{round}");
        }
        EventKind::Recovery { rank } => {
            let _ = write!(out, "\"rank\":{rank}");
        }
        EventKind::Batch { lanes, .. } => {
            let _ = write!(out, "\"lanes\":{lanes}");
        }
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComputeKind, OpKind, Phase};
    use crate::json;

    #[test]
    fn exporter_output_is_valid_json_with_expected_tracks() {
        let mut buf = TraceBuffer::new(2, 16);
        buf.push_world(TraceEvent {
            kind: EventKind::Span {
                phase: Phase::Level,
                level: 0,
            },
            t0: 0.0,
            t1: 2e-3,
        });
        buf.push_world(TraceEvent {
            kind: EventKind::Round {
                op: OpKind::Expand,
                messages: 3,
                verts: 40,
                bottleneck: 1,
            },
            t0: 1e-4,
            t1: 9e-4,
        });
        buf.push_world(TraceEvent {
            kind: EventKind::Compute {
                comp: ComputeKind::Hash,
                bottleneck: 0,
            },
            t0: 1e-3,
            t1: 1.5e-3,
        });
        buf.push_rank(
            1,
            TraceEvent {
                kind: EventKind::Send {
                    from: 1,
                    to: 0,
                    bytes: 320,
                    hops: 2,
                },
                t0: 1e-4,
                t1: 5e-4,
            },
        );
        buf.push_world(TraceEvent {
            kind: EventKind::RankDeath { rank: 1, round: 4 },
            t0: 2e-3,
            t1: 2e-3,
        });
        let doc = chrome_trace(&buf);
        let v = json::parse(&doc).expect("exporter must emit valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 metadata (process + 2 ranks... plus world) => 4 metadata + 5 events.
        assert_eq!(events.len(), 4 + 5);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"level 0"));
        assert!(names.contains(&"send 1->0"));
        assert!(names.contains(&"rank 1 died"));
        // The world track id is ranks() == 2.
        let world_span = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("level 0"))
            .unwrap();
        assert_eq!(world_span.get("tid").unwrap().as_f64(), Some(2.0));
        assert_eq!(world_span.get("ph").unwrap().as_str(), Some("X"));
        // ts/dur are microseconds.
        assert_eq!(world_span.get("dur").unwrap().as_f64(), Some(2e3));
    }
}
