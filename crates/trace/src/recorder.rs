//! Ring-buffer event storage.
//!
//! A [`TraceBuffer`] holds one bounded [`Ring`] per rank (for per-rank
//! events: point-to-point sends, retransmits) plus one *world* ring (for
//! events whose scope is the whole synchronous machine: spans, rounds,
//! compute passes, allreduces, deaths). Rings overwrite their oldest
//! record when full and count what they dropped, so a trace of a huge
//! run degrades gracefully instead of growing without bound.

use crate::event::TraceEvent;

/// Default ring capacity per track (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A bounded ring of trace events: pushing past capacity overwrites the
/// oldest record and bumps the drop counter.
#[derive(Debug, Clone)]
pub struct Ring {
    cap: usize,
    buf: Vec<TraceEvent>,
    /// Index of the oldest record once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl Ring {
    /// An empty ring. No storage is allocated until the first push.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Self {
            cap,
            buf: Vec::new(),
            start: 0,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Heap capacity currently allocated (events).
    pub fn allocated(&self) -> usize {
        self.buf.capacity()
    }

    /// Drop all events (keeps the allocation for reuse).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

/// Per-rank ring-buffer recorder: `ranks` rank-scoped rings plus one
/// world ring.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    ranks: usize,
    /// `rings[r]` for rank `r`; `rings[ranks]` is the world ring.
    rings: Vec<Ring>,
}

impl TraceBuffer {
    /// A buffer for `ranks` ranks with `cap` events per ring.
    pub fn new(ranks: usize, cap: usize) -> Self {
        Self {
            ranks,
            rings: (0..=ranks).map(|_| Ring::new(cap)).collect(),
        }
    }

    /// Number of rank-scoped rings.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Record a rank-scoped event. Out-of-range ranks (including a
    /// single-ring buffer created with `ranks == 0`) land on the world
    /// ring.
    pub fn push_rank(&mut self, rank: usize, ev: TraceEvent) {
        let i = rank.min(self.ranks);
        self.rings[i].push(ev);
    }

    /// Record a world-scoped event.
    pub fn push_world(&mut self, ev: TraceEvent) {
        self.rings[self.ranks].push(ev);
    }

    /// The world ring's events, oldest first.
    pub fn world_events(&self) -> Vec<TraceEvent> {
        self.rings[self.ranks].iter().copied().collect()
    }

    /// Events on rank `r`'s ring, oldest first.
    pub fn rank_events(&self, rank: usize) -> Vec<TraceEvent> {
        self.rings[rank.min(self.ranks)].iter().copied().collect()
    }

    /// All events with their track index (rank, or `ranks()` for the
    /// world track), in deterministic order: sorted by start time, ties
    /// broken by track then ring order.
    pub fn events(&self) -> Vec<(usize, TraceEvent)> {
        let mut all: Vec<(usize, TraceEvent)> = Vec::with_capacity(self.len());
        for (track, ring) in self.rings.iter().enumerate() {
            all.extend(ring.iter().map(|&ev| (track, ev)));
        }
        all.sort_by(|a, b| {
            a.1.t0
                .total_cmp(&b.1.t0)
                .then(a.1.t1.total_cmp(&b.1.t1))
                .then(a.0.cmp(&b.0))
        });
        all
    }

    /// Total events currently held across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(Ring::len).sum()
    }

    /// Whether no ring holds any event.
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(Ring::is_empty)
    }

    /// Total events overwritten across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(Ring::dropped).sum()
    }

    /// Total heap capacity currently allocated across rings (events).
    pub fn allocated(&self) -> usize {
        self.rings.iter().map(Ring::allocated).sum()
    }

    /// Drop all events, keeping ring allocations.
    pub fn clear(&mut self) {
        for r in &mut self.rings {
            r.clear();
        }
    }

    /// Fold another buffer's events into this one: `other`'s rank ring
    /// `r` lands on this buffer's ring `base_rank + r` offset — used to
    /// assemble one world buffer from the threaded runtime's per-rank
    /// recorders, whose world-scoped events are rank-local.
    pub fn absorb_rank(&mut self, rank: usize, other: &TraceBuffer) {
        for ring in &other.rings {
            for &ev in ring.iter() {
                self.push_rank(rank, ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase};

    fn ev(t0: f64, t1: f64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Span {
                phase: Phase::Level,
                level: 0,
            },
            t0,
            t1,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(ev(i as f64, i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let t0s: Vec<f64> = r.iter().map(|e| e.t0).collect();
        assert_eq!(t0s, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn ring_allocates_lazily() {
        let r = Ring::new(1024);
        assert_eq!(r.allocated(), 0);
    }

    #[test]
    fn buffer_routes_tracks_and_sorts_events() {
        let mut b = TraceBuffer::new(2, 8);
        b.push_world(ev(1.0, 2.0));
        b.push_rank(0, ev(0.5, 0.6));
        b.push_rank(1, ev(0.5, 0.7));
        b.push_rank(9, ev(3.0, 3.0)); // clamps to world ring
        let evs = b.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].0, 0); // earliest start, shortest, lowest track
        assert_eq!(evs[1].0, 1);
        assert_eq!(evs[2].1.t0, 1.0);
        assert_eq!(evs[3].0, 2); // world track
        assert_eq!(b.world_events().len(), 2);
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut b = TraceBuffer::new(1, 4);
        b.push_world(ev(0.0, 1.0));
        let alloc = b.allocated();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.allocated(), alloc);
    }
}
