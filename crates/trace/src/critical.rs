//! Per-level critical-path analysis.
//!
//! The superstep runtimes are bulk-synchronous: every phase's elapsed
//! time is the maximum over ranks, so a level's duration decomposes
//! exactly into the phase spans the BFS loop emitted inside it. The
//! analyzer groups spans by containment in each `level` span, names the
//! **bounding phase** (the phase with the largest share of the level)
//! and its **bottleneck rank** (from the longest round/compute event
//! inside that phase), and reports how much of total run time the level
//! spans cover. `to_summary_json` renders the machine-readable
//! `TRACE_summary.json` the CI smoke test checks.

use crate::event::{EventKind, Phase, TraceEvent};
use crate::json::{push_f64, push_str_lit};
use crate::recorder::TraceBuffer;
use std::fmt::Write as _;

/// One phase's share of a level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSlice {
    pub phase: Phase,
    /// Total duration of this phase's spans inside the level (seconds).
    pub duration: f64,
    /// Rank bounding the phase's longest round/compute event, if the
    /// trace recorded one inside the phase.
    pub bottleneck: Option<u32>,
}

/// Critical-path record for one level span.
#[derive(Debug, Clone)]
pub struct LevelCritical {
    pub level: u32,
    pub t0: f64,
    pub t1: f64,
    /// Phase slices inside the level, largest first.
    pub phases: Vec<PhaseSlice>,
}

impl LevelCritical {
    /// The level span's duration.
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// The phase bounding this level (largest slice), if any phase span
    /// was recorded inside it.
    pub fn bounding(&self) -> Option<&PhaseSlice> {
        self.phases.first()
    }
}

/// The whole run's critical-path analysis.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Per-level records in time order.
    pub levels: Vec<LevelCritical>,
    /// End of the last recorded event (total traced time).
    pub total_time: f64,
}

impl CriticalPath {
    /// Analyze a recorded buffer.
    pub fn analyze(buf: &TraceBuffer) -> Self {
        let events = buf.world_events();
        Self::from_events(&events)
    }

    /// Analyze a flat world-event list (must contain the spans).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let total_time = events.iter().map(|e| e.t1).fold(0.0f64, f64::max);
        let mut levels: Vec<LevelCritical> = Vec::new();
        for ev in events {
            let EventKind::Span {
                phase: Phase::Level,
                level,
            } = ev.kind
            else {
                continue;
            };
            let mut slices: Vec<PhaseSlice> = Vec::new();
            for inner in events.iter().filter(|e| {
                e.is_span()
                    && !matches!(
                        e.kind,
                        EventKind::Span {
                            phase: Phase::Level,
                            ..
                        }
                    )
                    && e.within(ev)
            }) {
                let EventKind::Span { phase, .. } = inner.kind else {
                    continue;
                };
                let bottleneck = bottleneck_of(events, inner);
                match slices.iter_mut().find(|s| s.phase == phase) {
                    // A phase can appear more than once per level (e.g.
                    // ring steps split across sub-spans): accumulate, and
                    // keep the bottleneck of the longest occurrence seen.
                    Some(s) => {
                        if inner.duration() > s.duration {
                            s.bottleneck = bottleneck.or(s.bottleneck);
                        }
                        s.duration += inner.duration();
                    }
                    None => slices.push(PhaseSlice {
                        phase,
                        duration: inner.duration(),
                        bottleneck,
                    }),
                }
            }
            slices.sort_by(|a, b| {
                b.duration
                    .total_cmp(&a.duration)
                    .then(a.phase.cmp(&b.phase))
            });
            levels.push(LevelCritical {
                level,
                t0: ev.t0,
                t1: ev.t1,
                phases: slices,
            });
        }
        levels.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        Self { levels, total_time }
    }

    /// Fraction of total traced time covered by level spans.
    pub fn coverage(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 1.0;
        }
        let covered: f64 = self.levels.iter().map(LevelCritical::duration).sum();
        covered / self.total_time
    }

    /// Render the per-level table as aligned text.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("level      duration  bounding phase      share  bottleneck\n");
        for l in &self.levels {
            let (phase, share, rank) = match l.bounding() {
                Some(b) => (
                    b.phase.name(),
                    b.duration * 100.0 / l.duration().max(f64::MIN_POSITIVE),
                    b.bottleneck
                        .map_or("-".to_string(), |r| format!("rank {r}")),
                ),
                None => ("-", 0.0, "-".to_string()),
            };
            let _ = writeln!(
                out,
                "{:>5}  {:>10}  {:<16} {:>7.2}%  {}",
                l.level,
                fmt_secs(l.duration()),
                phase,
                share,
                rank
            );
        }
        let _ = writeln!(
            out,
            "coverage: {:.1}% of {} total traced time",
            self.coverage() * 100.0,
            fmt_secs(self.total_time)
        );
        out
    }

    /// Render the machine-readable `TRACE_summary.json` document.
    pub fn to_summary_json(&self) -> String {
        let mut out = String::from("{\"total_time\":");
        push_f64(&mut out, self.total_time);
        out.push_str(",\"coverage\":");
        push_f64(&mut out, self.coverage());
        out.push_str(",\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"level\":{},\"t0\":", l.level);
            push_f64(&mut out, l.t0);
            out.push_str(",\"t1\":");
            push_f64(&mut out, l.t1);
            out.push_str(",\"duration\":");
            push_f64(&mut out, l.duration());
            out.push_str(",\"bounding\":");
            match l.bounding() {
                Some(b) => push_slice(&mut out, b),
                None => out.push_str("null"),
            }
            out.push_str(",\"phases\":[");
            for (j, s) in l.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_slice(&mut out, s);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn push_slice(out: &mut String, s: &PhaseSlice) {
    out.push_str("{\"phase\":");
    push_str_lit(out, s.phase.name());
    out.push_str(",\"duration\":");
    push_f64(out, s.duration);
    match s.bottleneck {
        Some(r) => {
            let _ = write!(out, ",\"bottleneck_rank\":{r}}}");
        }
        None => out.push_str(",\"bottleneck_rank\":null}"),
    }
}

/// The bottleneck rank of the longest round/compute event inside `span`.
fn bottleneck_of(events: &[TraceEvent], span: &TraceEvent) -> Option<u32> {
    events
        .iter()
        .filter(|e| e.within(span))
        .filter_map(|e| match e.kind {
            EventKind::Round { bottleneck, .. } | EventKind::Compute { bottleneck, .. } => {
                Some((e.duration(), bottleneck))
            }
            _ => None,
        })
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(_, r)| r)
}

/// Compact human-readable seconds for the tables.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use crate::json;

    fn span(phase: Phase, level: u32, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Span { phase, level },
            t0,
            t1,
        }
    }

    fn round(bottleneck: u32, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Round {
                op: OpKind::Fold,
                messages: 1,
                verts: 1,
                bottleneck,
            },
            t0,
            t1,
        }
    }

    #[test]
    fn names_bounding_phase_and_bottleneck() {
        let events = vec![
            span(Phase::Level, 0, 0.0, 10.0),
            span(Phase::Expand, 0, 0.0, 2.0),
            span(Phase::Fold, 0, 2.0, 9.0),
            round(3, 2.5, 8.0),
            span(Phase::Absorb, 0, 9.0, 10.0),
            span(Phase::Level, 1, 10.0, 14.0),
            span(Phase::Expand, 1, 10.0, 13.0),
            round(1, 10.0, 12.5),
            span(Phase::Fold, 1, 13.0, 14.0),
        ];
        let cp = CriticalPath::from_events(&events);
        assert_eq!(cp.levels.len(), 2);
        assert_eq!(cp.total_time, 14.0);
        let l0 = &cp.levels[0];
        assert_eq!(l0.level, 0);
        assert_eq!(l0.duration(), 10.0);
        let b = l0.bounding().unwrap();
        assert_eq!(b.phase, Phase::Fold);
        assert_eq!(b.duration, 7.0);
        assert_eq!(b.bottleneck, Some(3));
        let b1 = cp.levels[1].bounding().unwrap();
        assert_eq!(b1.phase, Phase::Expand);
        assert_eq!(b1.bottleneck, Some(1));
        assert!((cp.coverage() - 1.0).abs() < 1e-12);
        let table = cp.render_table();
        assert!(table.contains("fold"));
    }

    #[test]
    fn summary_json_parses_and_carries_fields() {
        let events = vec![
            span(Phase::Level, 0, 0.0, 4.0),
            span(Phase::Fold, 0, 1.0, 4.0),
        ];
        let cp = CriticalPath::from_events(&events);
        let doc = cp.to_summary_json();
        let v = json::parse(&doc).expect("summary must be valid JSON");
        assert_eq!(v.get("total_time").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("coverage").unwrap().as_f64(), Some(1.0));
        let lvls = v.get("levels").unwrap().as_arr().unwrap();
        assert_eq!(lvls.len(), 1);
        let b = lvls[0].get("bounding").unwrap();
        assert_eq!(b.get("phase").unwrap().as_str(), Some("fold"));
        assert_eq!(b.get("duration").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn empty_trace_has_full_coverage_of_nothing() {
        let cp = CriticalPath::from_events(&[]);
        assert!(cp.levels.is_empty());
        assert_eq!(cp.coverage(), 1.0);
        assert!(json::parse(&cp.to_summary_json()).is_ok());
    }
}
