//! The trace event model.
//!
//! Everything the recorder stores is one fixed-size [`TraceEvent`]: an
//! [`EventKind`] plus a `[t0, t1]` interval on the run's clock. In the
//! superstep simulator the clock is the simulated α–β–hop time (seconds,
//! deterministic bit-for-bit); in the threaded runtime it is wall-clock
//! seconds since the rank context was created. Spans emitted by the BFS
//! loops bracket the collective phases; events emitted by the runtimes
//! (message rounds, point-to-point sends, retransmits, deaths) land
//! inside them, so consumers attribute events to phases purely by time
//! containment — the simulator's clock is monotone and phases never
//! overlap.

/// A collective phase of the level-synchronous loop, used by span events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// One whole level of the main loop (brackets all other phases).
    Level,
    /// Global frontier-size allreduce (termination detection).
    Termination,
    /// Frontier expand over processor-columns.
    Expand,
    /// Bottom-up frontier gather over processor-columns (the
    /// direction-optimizing engine's replacement for expand).
    Gather,
    /// Local neighbor discovery (zero-duration in the simulator: its
    /// probes are charged in the absorb phase's hash pass).
    Discover,
    /// Fold over processor-rows.
    Fold,
    /// Absorb newly labeled vertices + the level's hash-probe charge.
    Absorb,
    /// A checkpoint of the per-rank states (resilient runs).
    Checkpoint,
    /// A checkpoint recovery: revive, regenerate, replay (resilient runs).
    Recovery,
    /// One hop of the lane-masked batched path walk: the three control
    /// rounds (announce / forward / reply) that advance every active
    /// path-extraction lane one step toward the source.
    PathWalk,
}

impl Phase {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Level => "level",
            Phase::Termination => "termination",
            Phase::Expand => "expand",
            Phase::Gather => "gather",
            Phase::Discover => "discover",
            Phase::Fold => "fold",
            Phase::Absorb => "absorb",
            Phase::Checkpoint => "checkpoint",
            Phase::Recovery => "recovery",
            Phase::PathWalk => "path_walk",
        }
    }
}

/// Operation class of a message round, mirroring the communication
/// layer's expand/fold/control split (kept separate so this crate does
/// not depend on `bgl-comm`, which depends on us).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Frontier expand traffic.
    Expand,
    /// Fold (neighbor-set return) traffic.
    Fold,
    /// Control traffic (tree network: allreduces, mirrors, recovery).
    Control,
}

impl OpKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Expand => "expand",
            OpKind::Fold => "fold",
            OpKind::Control => "control",
        }
    }

    /// Map from the communication layer's class index (0 = expand,
    /// 1 = fold, 2 = control).
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => OpKind::Expand,
            1 => OpKind::Fold,
            _ => OpKind::Control,
        }
    }

    /// Inverse of [`OpKind::from_index`].
    pub fn index(self) -> usize {
        match self {
            OpKind::Expand => 0,
            OpKind::Fold => 1,
            OpKind::Control => 2,
        }
    }
}

/// Which modelled compute pass a [`EventKind::Compute`] event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeKind {
    /// Hash-probe pass (discovery/absorb lookups).
    Hash,
    /// Buffer-copy pass (union merge traffic).
    Memcpy,
    /// Wire-codec pass (payload encode/decode around an exchange).
    Codec,
}

impl ComputeKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            ComputeKind::Hash => "hash",
            ComputeKind::Memcpy => "memcpy",
            ComputeKind::Codec => "codec",
        }
    }
}

/// What one trace record describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A named span over the interval: one collective phase (or whole
    /// level) of the BFS loop. `level` is the loop's level counter.
    Span { phase: Phase, level: u32 },
    /// One synchronous message round: `messages` point-to-point sends
    /// moving `verts` wire vertices; the round's elapsed time is bounded
    /// by `bottleneck` (the argmax rank of per-rank send/receive time).
    Round {
        op: OpKind,
        messages: u32,
        verts: u64,
        bottleneck: u32,
    },
    /// One point-to-point send inside a round (event-level detail only).
    Send {
        from: u32,
        to: u32,
        bytes: u64,
        hops: u32,
    },
    /// A send that needed `retries` ack-timeout retransmissions (with
    /// exponential backoff) before it was delivered.
    Retransmit { from: u32, to: u32, retries: u32 },
    /// A modelled synchronous compute pass, bounded by `bottleneck`.
    Compute { comp: ComputeKind, bottleneck: u32 },
    /// One tree-network allreduce (termination checks, meet detection).
    TreeAllreduce,
    /// The per-rank states were checkpointed before `level` ran.
    Checkpoint { level: u32 },
    /// A scheduled rank death fired at data round `round`.
    RankDeath { rank: u32, round: u64 },
    /// Rank `rank` was revived and replayed, either reconstructed from
    /// its parity group's surviving logs + shard or (degraded mode)
    /// restored wholesale from the last full checkpoint.
    Recovery { rank: u32 },
    /// One multi-source batch served by `bgl-server`: `lanes` sources
    /// advanced together through the wave whose phase spans this event
    /// encloses. `batch` is the server's batch sequence number.
    Batch { batch: u32, lanes: u32 },
}

/// One recorded event: a kind over `[t0, t1]` (seconds on the run's
/// clock; instantaneous events have `t0 == t1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub kind: EventKind,
    pub t0: f64,
    pub t1: f64,
}

impl TraceEvent {
    /// Interval length in seconds.
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Whether this is a span event.
    pub fn is_span(&self) -> bool {
        matches!(self.kind, EventKind::Span { .. })
    }

    /// Whether `self` lies inside `outer`'s interval (inclusive). Both
    /// runtimes read interval endpoints from one monotone clock, so
    /// nesting is exact — no epsilon needed.
    pub fn within(&self, outer: &TraceEvent) -> bool {
        self.t0 >= outer.t0 && self.t1 <= outer.t1
    }
}
