//! # bgl-trace — structured tracing for the BFS reproduction
//!
//! A zero-cost-when-disabled event/span recorder keyed to the run's
//! clock (the simulator's deterministic α–β–hop time, or wall-clock in
//! the threaded runtime), with three consumers:
//!
//! * [`chrome::chrome_trace`] — Chrome `trace_event` JSON, one track per
//!   simulated rank plus a world track (load in `chrome://tracing` or
//!   Perfetto);
//! * [`heatmap::LinkHeatmap`] — torus link-utilization heatmap (bytes ×
//!   hops per physical link along dimension-ordered routes, top-k
//!   hotspot table);
//! * [`critical::CriticalPath`] — per-level critical-path analysis
//!   naming the phase/rank bounding each level, exported as
//!   `TRACE_summary.json`.
//!
//! The runtimes carry a [`TraceSink`]: disabled it is a single `None`
//! word and every emit call is one predictable branch — no buffers, no
//! heap traffic, bit-identical clocks. Enabled, events land in per-rank
//! bounded [`recorder::Ring`]s that overwrite their oldest records (and
//! count drops) instead of growing without bound.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod critical;
pub mod event;
pub mod heatmap;
pub mod json;
pub mod recorder;
pub mod report;
mod sink;
pub mod wire_summary;

pub use critical::{CriticalPath, LevelCritical, PhaseSlice};
pub use event::{ComputeKind, EventKind, OpKind, Phase, TraceEvent};
pub use heatmap::LinkHeatmap;
pub use recorder::{Ring, TraceBuffer, DEFAULT_RING_CAPACITY};
pub use report::{write_artifacts, TraceReport};
pub use sink::{TraceDetail, TraceSink};
pub use wire_summary::{OpTraffic, WireSummary, WIRE_VERT_BYTES};
