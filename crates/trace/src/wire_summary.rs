//! Wire-level traffic totals replayed purely from recorded events.
//!
//! [`WireSummary::from_events`] folds a trace into the numbers the
//! codec work is judged by: logical bytes per operation class (from
//! `Round` events, which count *logical* vertices), actual bytes on the
//! wire (from `Send` events, which carry the encoded frame size),
//! and the modelled encode/decode time (`Compute`/`Codec` events).
//! The result lands in `TRACE_summary.json` next to the critical path,
//! so a golden trace documents its own compression ratio.

use crate::event::{ComputeKind, EventKind, OpKind, TraceEvent};
use crate::json::push_f64;
use std::fmt::Write as _;

/// Bytes one vertex occupies in an unencoded payload. Mirrors
/// `bgl_comm::VERT_BYTES` (this crate sits below the communication
/// layer, same as [`OpKind::from_index`] mirrors its class indices);
/// the comm crate pins the two together in a test.
pub const WIRE_VERT_BYTES: u64 = 8;

/// Per-operation-class logical traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTraffic {
    /// Synchronous message rounds recorded.
    pub rounds: u64,
    /// Point-to-point messages those rounds reported.
    pub messages: u64,
    /// Uncompressed payload bytes (`Round` vertices × [`WIRE_VERT_BYTES`]).
    pub logical_bytes: u64,
}

/// Wire totals for one recorded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireSummary {
    /// Logical traffic by class, indexed like [`OpKind::from_index`].
    pub per_op: [OpTraffic; 3],
    /// Point-to-point `Send` events seen (event-level detail only —
    /// zero at span detail, in which case wire bytes are unknown).
    pub sends: u64,
    /// Encoded bytes those sends put on the wire.
    pub wire_bytes: u64,
    /// Total modelled codec (encode/decode) time in seconds.
    pub codec_time: f64,
}

impl WireSummary {
    /// Fold `events` into wire totals.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> Self {
        let mut s = Self::default();
        for ev in events {
            match ev.kind {
                EventKind::Round {
                    op,
                    messages,
                    verts,
                    ..
                } => {
                    let t = &mut s.per_op[op.index()];
                    t.rounds += 1;
                    t.messages += u64::from(messages);
                    t.logical_bytes += verts * WIRE_VERT_BYTES;
                }
                EventKind::Send { bytes, .. } => {
                    s.sends += 1;
                    s.wire_bytes += bytes;
                }
                EventKind::Compute {
                    comp: ComputeKind::Codec,
                    ..
                } => s.codec_time += ev.duration(),
                _ => {}
            }
        }
        s
    }

    /// Total uncompressed payload bytes across all classes.
    pub fn logical_bytes(&self) -> u64 {
        self.per_op.iter().map(|t| t.logical_bytes).sum()
    }

    /// Logical-to-wire compression ratio (1.0 when nothing was sent or
    /// the trace carries no send events to measure).
    pub fn compression_ratio(&self) -> f64 {
        if self.sends == 0 || self.wire_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes() as f64 / self.wire_bytes as f64
    }

    /// Render the `"wire"` object embedded in `TRACE_summary.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, t) in self.per_op.iter().enumerate() {
            let _ = write!(
                out,
                "\"{}\":{{\"rounds\":{},\"messages\":{},\"logical_bytes\":{}}},",
                OpKind::from_index(i).name(),
                t.rounds,
                t.messages,
                t.logical_bytes
            );
        }
        let _ = write!(
            out,
            "\"sends\":{},\"logical_bytes\":{},\"wire_bytes\":{},\"compression_ratio\":",
            self.sends,
            self.logical_bytes(),
            self.wire_bytes
        );
        push_f64(&mut out, self.compression_ratio());
        out.push_str(",\"codec_time\":");
        push_f64(&mut out, self.codec_time);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent { kind, t0, t1 }
    }

    #[test]
    fn folds_rounds_sends_and_codec_time() {
        let events = [
            ev(
                EventKind::Round {
                    op: OpKind::Expand,
                    messages: 3,
                    verts: 10,
                    bottleneck: 0,
                },
                0.0,
                1.0,
            ),
            ev(
                EventKind::Round {
                    op: OpKind::Fold,
                    messages: 2,
                    verts: 4,
                    bottleneck: 1,
                },
                1.0,
                2.0,
            ),
            ev(
                EventKind::Send {
                    from: 0,
                    to: 1,
                    bytes: 30,
                    hops: 1,
                },
                0.1,
                0.2,
            ),
            ev(
                EventKind::Send {
                    from: 1,
                    to: 0,
                    bytes: 12,
                    hops: 2,
                },
                1.1,
                1.2,
            ),
            ev(
                EventKind::Compute {
                    comp: ComputeKind::Codec,
                    bottleneck: 0,
                },
                2.0,
                2.5,
            ),
            ev(
                EventKind::Compute {
                    comp: ComputeKind::Hash,
                    bottleneck: 0,
                },
                2.5,
                3.5,
            ),
        ];
        let s = WireSummary::from_events(events.iter());
        assert_eq!(s.per_op[0].rounds, 1);
        assert_eq!(s.per_op[0].messages, 3);
        assert_eq!(s.per_op[0].logical_bytes, 80);
        assert_eq!(s.per_op[1].logical_bytes, 32);
        assert_eq!(s.logical_bytes(), 112);
        assert_eq!(s.sends, 2);
        assert_eq!(s.wire_bytes, 42);
        assert!((s.compression_ratio() - 112.0 / 42.0).abs() < 1e-12);
        assert!((s.codec_time - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_reports_neutral_ratio() {
        let s = WireSummary::from_events([].iter());
        assert_eq!(s.compression_ratio(), 1.0);
        assert_eq!(s.logical_bytes(), 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let s = WireSummary::from_events([].iter());
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"expand\"",
            "\"fold\"",
            "\"control\"",
            "\"sends\"",
            "\"wire_bytes\"",
            "\"compression_ratio\"",
            "\"codec_time\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
