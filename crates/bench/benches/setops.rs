//! Criterion micro-benchmarks of the hybrid vertex-set kernels: sorted
//! list merges vs word-wise bitmap ORs on dense union-fold payloads —
//! the compute inner loop of the reduce-scatter and two-phase folds.

use bgl_comm::vset::or_words;
use bgl_comm::{Vert, VertSet, VsetPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Synthetic fold payloads: `blocks` sorted vertex lists over a common
/// `span`-slot range with heavy cross-block overlap (each block takes
/// every `stride`-th slot at a different phase), mimicking the dense
/// mid-BFS levels where most ranks rediscover the same neighbors.
fn dense_blocks(blocks: usize, span: u64, stride: u64) -> Vec<Vec<Vert>> {
    (0..blocks as u64)
        .map(|b| (0..span).filter(|v| (v + b) % stride == 0).collect())
        .collect()
}

/// Accumulate every block into one set under `policy`; returns the
/// final cardinality so the optimizer keeps the work.
fn accumulate(blocks: &[Vec<Vert>], policy: &VsetPolicy) -> usize {
    let mut acc = VertSet::new();
    for b in blocks {
        acc.union_in(b, policy);
    }
    acc.len()
}

fn bench_union_accumulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_accumulate_dense");
    for &span in &[1u64 << 13, 1 << 16] {
        let blocks = dense_blocks(16, span, 3);
        let elems: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        group.throughput(Throughput::Elements(elems));
        group.bench_with_input(BenchmarkId::new("list", span), &blocks, |b, blocks| {
            b.iter(|| black_box(accumulate(blocks, &VsetPolicy::list_only())))
        });
        group.bench_with_input(BenchmarkId::new("bitmap", span), &blocks, |b, blocks| {
            b.iter(|| black_box(accumulate(blocks, &VsetPolicy::hybrid())))
        });
    }
    group.finish();
}

fn bench_union_set_kernels(c: &mut Criterion) {
    // Set-to-set union of two pre-built dense sets: the list path walks
    // both element lists; the bitmap path is `or_words` over the span.
    let mut group = c.benchmark_group("union_set_dense_pair");
    let span = 1u64 << 16;
    let a: Vec<Vert> = (0..span).filter(|v| v % 3 == 0).collect();
    let b: Vec<Vert> = (0..span).filter(|v| v % 3 != 2).collect();
    group.throughput(Throughput::Elements((a.len() + b.len()) as u64));

    let policy = VsetPolicy::hybrid();
    let (la, lb) = (
        VertSet::from_sorted(a.clone()),
        VertSet::from_sorted(b.clone()),
    );
    let mut ba = la.clone();
    let mut bb = lb.clone();
    ba.maybe_densify(&policy);
    bb.maybe_densify(&policy);
    assert!(ba.is_bitmap() && bb.is_bitmap());

    group.bench_function("list_list", |bch| {
        bch.iter(|| {
            let mut acc = la.clone();
            black_box(acc.union_set(&lb, &VsetPolicy::list_only()))
        })
    });
    group.bench_function("bitmap_bitmap", |bch| {
        bch.iter(|| {
            let mut acc = ba.clone();
            black_box(acc.union_set(&bb, &policy))
        })
    });
    group.finish();

    // The raw word kernel in isolation.
    let mut group = c.benchmark_group("or_words_raw");
    let words = (span >> 6) as usize;
    let src: Vec<u64> = (0..words as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
    group.throughput(Throughput::Bytes((words * 8) as u64));
    group.bench_function(BenchmarkId::from_parameter(words), |bch| {
        let mut dst = vec![0u64; words];
        bch.iter(|| black_box(or_words(&mut dst, &src)))
    });
    group.finish();
}

criterion_group!(benches, bench_union_accumulate, bench_union_set_kernels);
criterion_main!(benches);
