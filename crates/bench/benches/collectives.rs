//! Criterion micro-benchmarks of the collective implementations on
//! synthetic payloads: direct all-to-all vs ring reduce-scatter-union vs
//! the two-phase grouped ring.

use bgl_comm::collectives::{
    alltoall::alltoallv, reduce_scatter::reduce_scatter_union_ring, two_phase::two_phase_fold,
    Groups,
};
use bgl_comm::{OpClass, ProcessorGrid, SimWorld, Vert};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Synthetic fold input: each of `g` members wants `len` vertices (with
/// heavy cross-member overlap) delivered to every member.
fn fold_blocks(g: usize, len: usize) -> Vec<Vec<Vec<Vert>>> {
    (0..g)
        .map(|src| {
            (0..g)
                .map(|dst| {
                    // 50% shared across sources, 50% distinct.
                    let mut v: Vec<Vert> = (0..len)
                        .map(|i| {
                            if i % 2 == 0 {
                                (dst * len + i) as Vert
                            } else {
                                (1_000_000 + src * g * len + dst * len + i) as Vert
                            }
                        })
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect()
        })
        .collect()
}

fn bench_fold_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fold_strategies_g16_len256");
    let g = 16;
    let len = 256;
    let grid = ProcessorGrid::new(1, g);
    let groups = Groups::rows_of(grid);

    group.bench_function("direct_alltoall", |b| {
        b.iter(|| {
            let mut w = SimWorld::bluegene(grid);
            let blocks = fold_blocks(g, len);
            let sends: Vec<Vec<(usize, Vec<Vert>)>> = blocks
                .into_iter()
                .map(|bs| bs.into_iter().enumerate().collect())
                .collect();
            black_box(alltoallv(&mut w, OpClass::Fold, &groups, sends))
        })
    });
    group.bench_function("reduce_scatter_union_ring", |b| {
        b.iter(|| {
            let mut w = SimWorld::bluegene(grid);
            black_box(reduce_scatter_union_ring(
                &mut w,
                OpClass::Fold,
                &groups,
                fold_blocks(g, len),
            ))
        })
    });
    group.bench_function("two_phase_grouped_ring", |b| {
        b.iter(|| {
            let mut w = SimWorld::bluegene(grid);
            black_box(two_phase_fold(
                &mut w,
                OpClass::Fold,
                &groups,
                fold_blocks(g, len),
            ))
        })
    });
    group.finish();
}

fn bench_two_phase_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_phase_fold_by_group_size");
    group.sample_size(20);
    for &g in &[4usize, 16, 64] {
        let grid = ProcessorGrid::new(1, g);
        let groups = Groups::rows_of(grid);
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                let mut w = SimWorld::bluegene(grid);
                black_box(two_phase_fold(
                    &mut w,
                    OpClass::Fold,
                    &groups,
                    fold_blocks(g, 64),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fold_strategies, bench_two_phase_scaling);
criterion_main!(benches);
