//! Criterion micro-benchmarks of the BFS kernels: 1D vs 2D algorithm,
//! wall-clock cost of a full simulated search at fixed problem size.
//!
//! (These measure the *simulator's* real execution speed; the simulated
//! BlueGene/L times come from the experiment binaries.)

use bfs_core::{bfs1d, bfs2d, BfsConfig};
use bgl_comm::{ProcessorGrid, SimWorld};
use bgl_graph::{DistGraph, GraphSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bfs_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs2d_full_search");
    group.sample_size(20);
    for &p in &[4usize, 16, 64] {
        let grid = ProcessorGrid::square_ish(p);
        let spec = GraphSpec::poisson(20_000, 10.0, 42);
        let graph = DistGraph::build(spec, grid);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                let mut world = SimWorld::bluegene(grid);
                let r = bfs2d::run(
                    &graph,
                    &mut world,
                    &BfsConfig::paper_optimized(),
                    black_box(1),
                );
                black_box(r.stats.reached)
            })
        });
    }
    group.finish();
}

fn bench_bfs_1d_vs_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_1d_vs_2d_p16");
    group.sample_size(20);
    let spec = GraphSpec::poisson(20_000, 10.0, 42);

    let grid_1d = ProcessorGrid::one_d(16);
    let graph_1d = DistGraph::build(spec, grid_1d);
    group.bench_function("algorithm1_1d", |b| {
        b.iter(|| {
            let mut world = SimWorld::bluegene(grid_1d);
            let r = bfs1d::run(&graph_1d, &mut world, &BfsConfig::paper_optimized(), 1);
            black_box(r.stats.reached)
        })
    });

    let grid_2d = ProcessorGrid::new(4, 4);
    let graph_2d = DistGraph::build(spec, grid_2d);
    group.bench_function("algorithm2_2d", |b| {
        b.iter(|| {
            let mut world = SimWorld::bluegene(grid_2d);
            let r = bfs2d::run(&graph_2d, &mut world, &BfsConfig::paper_optimized(), 1);
            black_box(r.stats.reached)
        })
    });
    group.finish();
}

fn bench_degree_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs2d_by_degree");
    group.sample_size(20);
    for &k in &[5u64, 10, 50] {
        let grid = ProcessorGrid::new(4, 4);
        let spec = GraphSpec::poisson(10_000, k as f64, 7);
        let graph = DistGraph::build(spec, grid);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut world = SimWorld::bluegene(grid);
                let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 1);
                black_box(r.stats.reached)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs_2d,
    bench_bfs_1d_vs_2d,
    bench_degree_sweep
);
criterion_main!(benches);
