//! Criterion micro-benchmarks of the graph generator: skip-sampling
//! throughput and distributed-build cost.

use bgl_comm::ProcessorGrid;
use bgl_graph::{cell_entries, ChunkGrid, DistGraph, GraphSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_cell_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_cell_sampling");
    for &k in &[4u64, 16, 64] {
        let n = 100_000u64;
        let spec = GraphSpec::poisson(n, k as f64, 42);
        let grid = ChunkGrid::new(n);
        let expected = (16384.0f64 * 16384.0 * spec.edge_probability()) as u64;
        group.throughput(Throughput::Elements(expected.max(1)));
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| black_box(cell_entries(&spec, &grid, 1, 0)))
        });
    }
    group.finish();
}

fn bench_dist_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_graph_build");
    group.sample_size(10);
    for &p in &[1usize, 16, 64] {
        let spec = GraphSpec::poisson(50_000, 10.0, 42);
        let grid = ProcessorGrid::square_ish(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| black_box(DistGraph::build(spec, grid).total_entries()))
        });
    }
    group.finish();
}

fn bench_rmat_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmat_graph_build");
    group.sample_size(10);
    let spec = GraphSpec::rmat(1 << 15, 16.0, 42);
    let grid = ProcessorGrid::new(4, 4);
    group.bench_function("scale15_k16_p16", |b| {
        b.iter(|| black_box(DistGraph::build(spec, grid).total_entries()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cell_sampling,
    bench_dist_build,
    bench_rmat_build
);
criterion_main!(benches);
