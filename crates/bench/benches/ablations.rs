//! Ablation benches for the design choices DESIGN.md calls out, measured
//! in *simulated BlueGene/L seconds* (printed) and wall time (criterion):
//!
//! * union-fold vs plain all-to-all fold,
//! * sent-neighbors cache on vs off,
//! * two-phase grouped ring vs full union ring,
//! * Figure 1 folded task mapping vs naive/scrambled mappings.

use bfs_core::{bfs2d, BfsConfig, ExpandStrategy, FoldStrategy};
use bgl_comm::{ChunkPolicy, ProcessorGrid, SimWorld};
use bgl_graph::{DistGraph, GraphSpec};
use bgl_torus::{MachineConfig, TaskMappingKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn world_with_mapping(grid: ProcessorGrid, kind: TaskMappingKind) -> SimWorld {
    let dims = MachineConfig::fit_partition(grid.len());
    SimWorld::new(
        grid,
        MachineConfig::bluegene_l_partition(dims),
        kind,
        ChunkPolicy::Unbounded,
    )
}

fn run_once(graph: &DistGraph, world: &mut SimWorld, config: &BfsConfig) -> f64 {
    world.reset();
    let r = bfs2d::run(graph, world, config, 1);
    r.stats.sim_time
}

fn bench_fold_ablation(c: &mut Criterion) {
    let grid = ProcessorGrid::new(4, 8);
    let spec = GraphSpec::poisson(32_000, 20.0, 42);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);

    // Print simulated-time comparison once.
    let t_union = run_once(
        &graph,
        &mut world,
        &BfsConfig {
            fold: FoldStrategy::TwoPhaseRing,
            ..BfsConfig::paper_optimized()
        },
    );
    let t_a2a = run_once(&graph, &mut world, &BfsConfig::baseline_alltoall());
    println!("[ablation] simulated time: union-fold {t_union:.6}s vs all-to-all {t_a2a:.6}s");

    let mut group = c.benchmark_group("ablation_fold_strategy");
    group.sample_size(15);
    group.bench_function("two_phase_union", |b| {
        b.iter(|| {
            black_box(run_once(
                &graph,
                &mut world,
                &BfsConfig {
                    fold: FoldStrategy::TwoPhaseRing,
                    ..BfsConfig::paper_optimized()
                },
            ))
        })
    });
    group.bench_function("direct_alltoall", |b| {
        b.iter(|| {
            black_box(run_once(
                &graph,
                &mut world,
                &BfsConfig::baseline_alltoall(),
            ))
        })
    });
    group.finish();
}

fn bench_sent_neighbors_ablation(c: &mut Criterion) {
    let grid = ProcessorGrid::new(4, 4);
    let spec = GraphSpec::poisson(20_000, 16.0, 7);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);

    let on = BfsConfig::paper_optimized();
    let off = BfsConfig {
        sent_neighbors: false,
        ..on
    };
    let (t_on, t_off) = (
        run_once(&graph, &mut world, &on),
        run_once(&graph, &mut world, &off),
    );
    println!("[ablation] simulated time: sent-cache on {t_on:.6}s vs off {t_off:.6}s");

    let mut group = c.benchmark_group("ablation_sent_neighbors");
    group.sample_size(15);
    group.bench_function("cache_on", |b| {
        b.iter(|| black_box(run_once(&graph, &mut world, &on)))
    });
    group.bench_function("cache_off", |b| {
        b.iter(|| black_box(run_once(&graph, &mut world, &off)))
    });
    group.finish();
}

fn bench_mapping_ablation(c: &mut Criterion) {
    let grid = ProcessorGrid::new(8, 8);
    let spec = GraphSpec::poisson(16_000, 10.0, 9);
    let graph = DistGraph::build(spec, grid);

    let config = BfsConfig {
        expand: ExpandStrategy::TwoPhaseRing,
        fold: FoldStrategy::TwoPhaseRing,
        ..BfsConfig::paper_optimized()
    };
    let mut sims: Vec<(&str, f64)> = Vec::new();
    for (name, kind) in [
        ("folded_planes", TaskMappingKind::FoldedPlanes),
        ("row_major", TaskMappingKind::RowMajor),
        ("scrambled", TaskMappingKind::Scrambled),
    ] {
        let mut world = world_with_mapping(grid, kind);
        sims.push((name, run_once(&graph, &mut world, &config)));
    }
    println!("[ablation] simulated time by task mapping: {sims:?}");

    let mut group = c.benchmark_group("ablation_task_mapping");
    group.sample_size(15);
    for (name, kind) in [
        ("folded_planes", TaskMappingKind::FoldedPlanes),
        ("scrambled", TaskMappingKind::Scrambled),
    ] {
        let mut world = world_with_mapping(grid, kind);
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_once(&graph, &mut world, &config)))
        });
    }
    group.finish();
}

fn bench_chunk_policy_ablation(c: &mut Criterion) {
    // §3.1: fixed buffers trade extra per-message overhead (more α) for
    // a P-independent memory footprint. Simulated time quantifies the
    // price of different chunk sizes.
    let grid = ProcessorGrid::new(4, 4);
    let spec = GraphSpec::poisson(24_000, 12.0, 21);
    let graph = DistGraph::build(spec, grid);
    let dims = MachineConfig::fit_partition(grid.len());

    let mut sims: Vec<(String, f64, usize)> = Vec::new();
    for (name, policy) in [
        ("unbounded".to_string(), ChunkPolicy::Unbounded),
        ("chunk_4096".to_string(), ChunkPolicy::fixed(4096)),
        ("chunk_256".to_string(), ChunkPolicy::fixed(256)),
    ] {
        let mut world = SimWorld::new(
            grid,
            MachineConfig::bluegene_l_partition(dims),
            TaskMappingKind::FoldedPlanes,
            policy,
        );
        let t = run_once(&graph, &mut world, &BfsConfig::baseline_alltoall());
        sims.push((name, t, world.stats.peak_buffer_verts));
    }
    println!("[ablation] chunk policy (simulated time, peak buffer verts): {sims:?}");

    let mut group = c.benchmark_group("ablation_chunk_policy");
    group.sample_size(15);
    for (name, policy) in [
        ("unbounded", ChunkPolicy::Unbounded),
        ("chunk_256", ChunkPolicy::fixed(256)),
    ] {
        let mut world = SimWorld::new(
            grid,
            MachineConfig::bluegene_l_partition(dims),
            TaskMappingKind::FoldedPlanes,
            policy,
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_once(
                    &graph,
                    &mut world,
                    &BfsConfig::baseline_alltoall(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_congestion_model_ablation(c: &mut Criterion) {
    // The congestion-aware round cost is strictly more work per round;
    // measure both its wall cost and how much simulated time it adds.
    let grid = ProcessorGrid::new(4, 8);
    let spec = GraphSpec::poisson(16_000, 10.0, 33);
    let graph = DistGraph::build(spec, grid);

    let mut plain = SimWorld::bluegene(grid);
    let t_plain = run_once(&graph, &mut plain, &BfsConfig::paper_optimized());
    let mut congested = SimWorld::bluegene(grid);
    congested.enable_congestion_model();
    let t_cong = run_once(&graph, &mut congested, &BfsConfig::paper_optimized());
    println!(
        "[ablation] simulated time: plain alpha-beta {t_plain:.6}s vs congestion-aware {t_cong:.6}s"
    );

    let mut group = c.benchmark_group("ablation_congestion_model");
    group.sample_size(15);
    group.bench_function("alpha_beta_only", |b| {
        b.iter(|| black_box(run_once(&graph, &mut plain, &BfsConfig::paper_optimized())))
    });
    group.bench_function("congestion_aware", |b| {
        b.iter(|| {
            black_box(run_once(
                &graph,
                &mut congested,
                &BfsConfig::paper_optimized(),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fold_ablation,
    bench_sent_neighbors_ablation,
    bench_mapping_ablation,
    bench_chunk_policy_ablation,
    bench_congestion_model_ablation
);
criterion_main!(benches);
