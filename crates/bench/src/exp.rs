//! Shared experiment plumbing for the figure/table binaries.

use crate::harness::Args;
use bfs_core::{bfs2d, bidir, BfsConfig, ComputeEngine};
use bgl_comm::{ProcessorGrid, SimWorld, WireMode, WirePolicy};
use bgl_graph::{DistGraph, GraphSpec};

/// Deterministic per-experiment source vertices: spread across the
/// vertex space, avoiding trivial 0.
pub fn sources(n: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| (i * 2 + 1) * n / (2 * count as u64))
        .collect()
}

/// Build the distributed graph and a matching simulated BlueGene/L
/// partition.
pub fn build(spec: GraphSpec, grid: ProcessorGrid) -> (DistGraph, SimWorld) {
    let graph = DistGraph::build(spec, grid);
    let world = SimWorld::bluegene(grid);
    (graph, world)
}

/// Parse the shared `--wire auto|raw|delta|bitmap` flag: the wire-codec
/// policy applied to every exchange (raw = codec off, the default, so
/// existing experiment outputs are unchanged unless asked for).
pub fn wire_policy(args: &Args) -> WirePolicy {
    match args.str("wire") {
        None => WirePolicy::raw(),
        Some(s) => WirePolicy::with_mode(
            WireMode::parse(s)
                .unwrap_or_else(|| panic!("--wire expects auto, raw, delta, or bitmap; got {s:?}")),
        ),
    }
}

/// Parse the shared `--engine serial|rayon|auto` flag (auto, the
/// default, picks per-superstep; results are bit-identical either way).
pub fn engine(args: &Args) -> ComputeEngine {
    match args.str("engine") {
        None | Some("auto") => ComputeEngine::Auto,
        Some("serial") => ComputeEngine::Serial,
        Some("rayon") => ComputeEngine::Rayon,
        Some(s) => panic!("--engine expects serial, rayon, or auto; got {s:?}"),
    }
}

/// Apply the shared `--engine-threads N` flag: overrides how many host
/// worker threads the rayon compute engine uses (0 or absent = one per
/// available core). Call once at binary start, before any searches.
pub fn apply_engine_threads(args: &Args) {
    if let Some(n) = args.str("engine-threads") {
        let n: usize = n
            .parse()
            .unwrap_or_else(|_| panic!("--engine-threads expects an integer, got {n:?}"));
        rayon::set_worker_threads(n);
    }
}

/// Outcome of averaging several searches.
#[derive(Debug, Clone, Copy)]
pub struct MeanTimes {
    /// Mean simulated execution time per search (seconds).
    pub exec: f64,
    /// Mean simulated communication time per search (seconds).
    pub comm: f64,
    /// Mean number of levels per search.
    pub levels: f64,
}

/// Run a full-component BFS from each source and average the simulated
/// times. The world is reset between searches.
pub fn mean_search(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    srcs: &[u64],
) -> MeanTimes {
    let mut exec = 0.0;
    let mut comm = 0.0;
    let mut levels = 0.0;
    for &s in srcs {
        world.reset();
        let r = bfs2d::run(graph, world, config, s);
        exec += r.stats.sim_time;
        comm += r.stats.comm_time;
        levels += r.stats.num_levels() as f64;
    }
    let c = srcs.len() as f64;
    MeanTimes {
        exec: exec / c,
        comm: comm / c,
        levels: levels / c,
    }
}

/// Run a bi-directional search between each source and a far target and
/// average times.
pub fn mean_bidir_search(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    pairs: &[(u64, u64)],
) -> MeanTimes {
    let mut exec = 0.0;
    let mut comm = 0.0;
    let mut levels = 0.0;
    for &(s, t) in pairs {
        world.reset();
        let r = bidir::run(graph, world, config, s, t);
        exec += r.stats.sim_time;
        comm += r.stats.comm_time;
        levels += r.stats.num_levels() as f64;
    }
    let c = pairs.len() as f64;
    MeanTimes {
        exec: exec / c,
        comm: comm / c,
        levels: levels / c,
    }
}

/// Run one traced search and write the trace artifacts
/// (`TRACE_chrome.json` + `TRACE_summary.json`) into `dir`. Returns the
/// report so callers can print the critical path. The world's trace is
/// drained afterwards, so subsequent measured runs are untraced.
pub fn traced_search(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: u64,
    dir: &std::path::Path,
) -> std::io::Result<bgl_trace::TraceReport> {
    world.reset();
    world.enable_trace(bgl_trace::TraceDetail::Event);
    let _ = bfs2d::run(graph, world, config, source);
    let buf = world.take_trace().expect("trace was just enabled");
    let machine = *world.cost_model().machine();
    bgl_trace::write_artifacts(&buf, world.mapping(), &machine, dir)
}

/// Fit `y ≈ a + b·log2(x)` by least squares and return `(a, b, r2)` —
/// used to confirm the paper's "execution time increases in proportion
/// to log P" regression claim.
pub fn fit_log(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let lx: Vec<f64> = xs.iter().map(|&x| x.log2()).collect();
    let n = xs.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let b = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let a = my - b * mx;
    let ss_tot: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let ss_res: f64 = lx
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - (a + b * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_in_range_distinct() {
        let s = sources(1000, 4);
        assert_eq!(s.len(), 4);
        for &v in &s {
            assert!(v < 1000);
        }
        let mut d = s.clone();
        d.dedup();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn fit_log_recovers_exact_relation() {
        let xs: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.5 * x.log2()).collect();
        let (a, b, r2) = fit_log(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn mean_search_runs() {
        let spec = GraphSpec::poisson(500, 8.0, 3);
        let grid = ProcessorGrid::new(2, 2);
        let (graph, mut world) = build(spec, grid);
        let m = mean_search(
            &graph,
            &mut world,
            &BfsConfig::paper_optimized(),
            &sources(500, 2),
        );
        assert!(m.exec > 0.0);
        assert!(m.comm > 0.0);
        assert!(m.levels >= 2.0);
        assert!(m.exec >= m.comm);
    }
}
