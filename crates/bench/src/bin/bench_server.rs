//! Evidence for the `bgl-server` serving layer: runs one seeded
//! Zipfian workload through the query server at several batch widths
//! (cache off), certifies every lane of the widest batch against its
//! standalone single-source run, and compares cache-on vs cache-off
//! serving. Writes `BENCH_server.json`.
//!
//! With `--check` the binary exits non-zero when the numbers miss the
//! PR's acceptance floors (CI smoke; every gate reads the simulated
//! clock and deterministic counters — no wall time, so the step is
//! stable on slow runners):
//!
//! * every lane of a B=16 batch over the workload's source pool is
//!   bit-identical to its standalone `bfs2d::run` and passes the
//!   Graph500-style validator;
//! * batched serving at B=16 sustains ≥ 1.5× the simulated-time
//!   throughput of B=1 with the cache disabled;
//! * with the cache on, the mean cache-hit service time is ≥ 10×
//!   cheaper than the mean engine service time, and hits actually
//!   occur;
//! * nothing is rejected or expired.
//!
//! ```text
//! cargo run --release -p bgl-bench --bin bench_server [-- --check]
//! ```

use bfs_core::{bfs2d, multi, BfsConfig, ComputeEngine};
use bgl_bench::harness::Args;
use bgl_comm::{ProcessorGrid, SimWorld, WirePolicy};
use bgl_graph::{DistGraph, GraphSpec};
use bgl_server::{BglServer, ServerConfig, WorkloadSpec};
use std::fmt::Write as _;

const HELP: &str = "\
bench_server — batched query-serving throughput benchmark

Writes BENCH_server.json (override with --out).

Flags:
  --n N           vertices in the benchmark graph (default 60000)
  --degree K      mean degree (default 16)
  --graph G       rmat | poisson (default rmat)
  --seed S        generator seed (default 4242)
  --rows R        processor grid rows (default 8)
  --cols C        processor grid cols (default 8)
  --queries Q     workload size (default 64)
  --hot H         Zipf source-pool size (default 16)
  --theta T       Zipf exponent (default 1.0)
  --zipf-seed S   workload seed (default 99)
  --widths LIST   batch widths to sweep (default 1,4,16,64)
  --cache-cap C   cache capacity for the cache-on run (default 64)
  --arrivals A    queries arriving per tick in the cache-on run
                  (default 4; the cache-off sweep is a closed burst)
  --out PATH      output path (default BENCH_server.json)
  --check         exit non-zero if acceptance floors are missed (CI)
";

/// Batched-over-single throughput floor checked by `--check`.
const MIN_BATCH_SPEEDUP: f64 = 1.5;
/// Cache-hit-over-engine service-time floor checked by `--check`.
const MIN_CACHE_SPEEDUP: f64 = 10.0;
/// The sweep width the gates read (also the identity-check width).
const GATE_WIDTH: usize = 16;

struct SweepRun {
    width: usize,
    served: u64,
    batches: u64,
    occupancy_mean: f64,
    waves: u64,
    engine_sim_s: f64,
    throughput: f64,
}

/// Serve `workload` to completion. `arrivals_per_tick == 0` submits
/// everything up front (closed burst — the throughput sweep's shape);
/// otherwise queries arrive in chunks with one pump per tick (open
/// arrivals — later repeats of a hot source find its levels cached).
fn serve_workload(
    graph: &DistGraph,
    wire: WirePolicy,
    config: ServerConfig,
    workload: &[bgl_server::QueryKind],
    arrivals_per_tick: usize,
) -> BglServer {
    let world = SimWorld::bluegene(graph.grid()).with_wire_policy(wire);
    let mut srv = BglServer::new(graph.clone(), world, config);
    if arrivals_per_tick == 0 {
        for &q in workload {
            srv.submit(q).expect("queue sized for the whole workload");
        }
    } else {
        for chunk in workload.chunks(arrivals_per_tick) {
            for &q in chunk {
                srv.submit(q).expect("queue sized for the whole workload");
            }
            srv.pump();
        }
    }
    srv.run_to_completion();
    srv
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 60_000);
    let degree = args.f64("degree", 16.0);
    let seed = args.u64("seed", 4242);
    let rows = args.u64("rows", 8) as usize;
    let cols = args.u64("cols", 8) as usize;
    let queries = args.u64("queries", 64) as usize;
    let hot = args.u64("hot", 16) as usize;
    let theta = args.f64("theta", 1.0);
    let zipf_seed = args.u64("zipf-seed", 99);
    let widths: Vec<usize> = args
        .u64_list("widths", &[1, 4, 16, 64])
        .into_iter()
        .map(|w| w as usize)
        .collect();
    let cache_cap = args.u64("cache-cap", 64) as usize;
    let arrivals = args.u64("arrivals", 4) as usize;
    let out = args.str("out").unwrap_or("BENCH_server.json").to_string();
    let check = args.bool("check", false);
    let kind = args.str("graph").unwrap_or("rmat");

    let spec = match kind {
        "rmat" => GraphSpec::rmat(n, degree, seed),
        "poisson" => GraphSpec::poisson(n, degree, seed),
        other => panic!("--graph: {other:?} (expected rmat or poisson)"),
    };
    let grid = ProcessorGrid::new(rows, cols);
    eprintln!("server workload: {kind} n={n} degree={degree} grid {rows}x{cols}");
    let graph = DistGraph::build(spec, grid);
    let wire = WirePolicy::auto();

    let wspec = WorkloadSpec {
        queries,
        hot_sources: hot,
        theta,
        mix: bgl_server::QueryMix::default(),
        seed: zipf_seed,
    };
    let workload = wspec.generate(n);
    let pool = wspec.source_pool(n);
    eprintln!(
        "  workload: {queries} queries over a {}-source Zipf(θ={theta}) pool",
        pool.len()
    );

    // --- Lane identity: one B-wide batch over the whole source pool,
    // every lane vs its standalone single-source run + validator. ----
    let gate_sources: Vec<u64> = pool.iter().copied().take(GATE_WIDTH).collect();
    let mut mworld = SimWorld::bluegene(grid).with_wire_policy(wire);
    let mcfg = multi::MultiConfig {
        engine: ComputeEngine::Auto,
        ..multi::MultiConfig::default()
    };
    let mres = multi::run(&graph, &mut mworld, &mcfg, &gate_sources);
    let mut lanes_identical = true;
    for (lane, &s) in gate_sources.iter().enumerate() {
        let mut w = SimWorld::bluegene(grid).with_wire_policy(wire);
        let single = bfs2d::run(&graph, &mut w, &BfsConfig::paper_optimized(), s);
        if mres.lane_levels[lane] != single.levels {
            eprintln!("  lane {lane} (source {s}) diverged from its single-source run");
            lanes_identical = false;
        }
    }
    let lanes_validated = multi::validate_lanes(&graph.spec, &mres).is_ok();
    eprintln!(
        "  identity: {} lanes vs single-source, identical: {lanes_identical}, validated: \
         {lanes_validated}",
        gate_sources.len()
    );

    // --- Throughput sweep over batch widths, cache off. --------------
    let mut sweep: Vec<SweepRun> = Vec::new();
    for &width in &widths {
        let srv = serve_workload(
            &graph,
            wire,
            ServerConfig {
                batch_width: width,
                queue_capacity: queries.max(1),
                cache_capacity: 0,
                validate_batches: width == GATE_WIDTH,
                ..ServerConfig::default()
            },
            &workload,
            0,
        );
        let s = srv.stats();
        let throughput = if s.engine_sim_time > 0.0 {
            s.served_total() as f64 / s.engine_sim_time
        } else {
            0.0
        };
        eprintln!(
            "  B={width:<3} {} batches, occupancy {:>5.2}, {:>3} waves, sim {:>8.3} ms, \
             {:>8.1} q/s",
            s.batches,
            s.occupancy_mean(),
            s.waves_total,
            s.engine_sim_time * 1e3,
            throughput
        );
        sweep.push(SweepRun {
            width,
            served: s.served_total(),
            batches: s.batches,
            occupancy_mean: s.occupancy_mean(),
            waves: s.waves_total,
            engine_sim_s: s.engine_sim_time,
            throughput,
        });
    }

    // --- Cache on vs off at the gate width. ---------------------------
    let cached = serve_workload(
        &graph,
        wire,
        ServerConfig {
            batch_width: GATE_WIDTH,
            queue_capacity: queries.max(1),
            cache_capacity: cache_cap,
            ..ServerConfig::default()
        },
        &workload,
        arrivals.max(1),
    );
    let cs = cached.stats();
    let hit_s = cs.cache_time_per_query();
    let miss_s = cs.engine_time_per_query();
    let cache_speedup = if hit_s > 0.0 { miss_s / hit_s } else { 0.0 };
    let cached_qps = cs.qps();
    eprintln!(
        "  cache on : {} engine / {} cache served, hit {:.3} µs vs engine {:.3} µs per query \
         ({cache_speedup:.1}x), {cached_qps:.1} q/s",
        cs.served_engine,
        cs.served_cache,
        hit_s * 1e6,
        miss_s * 1e6
    );

    let find = |w: usize| sweep.iter().find(|r| r.width == w);
    let batch_speedup = match (find(1), find(GATE_WIDTH)) {
        (Some(b1), Some(b16)) if b1.throughput > 0.0 => b16.throughput / b1.throughput,
        _ => 0.0,
    };
    eprintln!("  batched B={GATE_WIDTH} vs B=1 simulated throughput: {batch_speedup:.2}x");

    let clean = sweep.iter().all(|r| r.served == queries as u64)
        && cs.served_total() == queries as u64
        && cs.expired == 0;

    // --- Emit (hand-formatted: the bench crate carries no serde). -----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"graph\": {{");
    let _ = writeln!(json, "    \"kind\": \"{kind}\",");
    let _ = writeln!(json, "    \"n\": {n},");
    let _ = writeln!(json, "    \"degree\": {degree},");
    let _ = writeln!(json, "    \"seed\": {seed},");
    let _ = writeln!(json, "    \"grid\": \"{rows}x{cols}\"");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"workload\": {{");
    let _ = writeln!(json, "    \"queries\": {queries},");
    let _ = writeln!(json, "    \"hot_sources\": {},", pool.len());
    let _ = writeln!(json, "    \"theta\": {theta},");
    let _ = writeln!(json, "    \"seed\": {zipf_seed}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"lanes_identical\": {lanes_identical},");
    let _ = writeln!(json, "  \"lanes_validated\": {lanes_validated},");
    let _ = writeln!(json, "  \"sweep_cache_off\": [");
    for (i, r) in sweep.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"batch_width\": {},", r.width);
        let _ = writeln!(json, "      \"served\": {},", r.served);
        let _ = writeln!(json, "      \"batches\": {},", r.batches);
        let _ = writeln!(json, "      \"occupancy_mean\": {:.3},", r.occupancy_mean);
        let _ = writeln!(json, "      \"waves\": {},", r.waves);
        let _ = writeln!(
            json,
            "      \"engine_sim_ms\": {:.3},",
            r.engine_sim_s * 1e3
        );
        let _ = writeln!(json, "      \"throughput_qps\": {:.3}", r.throughput);
        let _ = writeln!(json, "    }}{}", if i + 1 < sweep.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"batch_speedup_16_over_1\": {batch_speedup:.3},");
    let _ = writeln!(json, "  \"cache_on\": {{");
    let _ = writeln!(json, "    \"capacity\": {cache_cap},");
    let _ = writeln!(json, "    \"arrivals_per_tick\": {},", arrivals.max(1));
    let _ = writeln!(json, "    \"served_engine\": {},", cs.served_engine);
    let _ = writeln!(json, "    \"served_cache\": {},", cs.served_cache);
    let _ = writeln!(json, "    \"hits\": {},", cached.cache().hits);
    let _ = writeln!(json, "    \"misses\": {},", cached.cache().misses);
    let _ = writeln!(json, "    \"hit_s_per_query\": {hit_s:.9},");
    let _ = writeln!(json, "    \"engine_s_per_query\": {miss_s:.9},");
    let _ = writeln!(json, "    \"cache_speedup\": {cache_speedup:.3},");
    let _ = writeln!(json, "    \"qps\": {cached_qps:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"all_served\": {clean}");
    json.push_str("}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if check {
        let mut failed = false;
        if !lanes_identical {
            eprintln!("FAIL: batched lanes differ from single-source runs");
            failed = true;
        }
        if !lanes_validated {
            eprintln!("FAIL: a batched lane failed Graph500-style validation");
            failed = true;
        }
        if batch_speedup < MIN_BATCH_SPEEDUP {
            eprintln!(
                "FAIL: B={GATE_WIDTH} throughput {batch_speedup:.2}x over B=1 is below the \
                 {MIN_BATCH_SPEEDUP}x floor"
            );
            failed = true;
        }
        if cs.served_cache == 0 {
            eprintln!("FAIL: the Zipf workload produced no cache hits");
            failed = true;
        }
        if cache_speedup < MIN_CACHE_SPEEDUP {
            eprintln!(
                "FAIL: cache hits {cache_speedup:.1}x cheaper than engine serving, below the \
                 {MIN_CACHE_SPEEDUP}x floor"
            );
            failed = true;
        }
        if !clean {
            eprintln!("FAIL: some queries were rejected or expired");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed");
    }
}
