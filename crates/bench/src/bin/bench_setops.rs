//! Host-side performance check for the hybrid-frontier PR: measures
//! list vs bitmap union-fold throughput and serial vs rayon superstep
//! wall-clock, and writes the numbers to `BENCH_setops.json`.
//!
//! Unlike the figure binaries this measures *host* wall-clock, not
//! simulated BlueGene/L time — it is the evidence that the hybrid
//! representation and the parallel engine actually pay for themselves
//! on the machine running the simulator.
//!
//! ```text
//! cargo run --release -p bgl-bench --bin bench_setops
//! ```

use bfs_core::{bfs2d, BfsConfig, ComputeEngine};
use bgl_bench::exp;
use bgl_bench::harness::Args;
use bgl_comm::{ProcessorGrid, SimWorld, Vert, VertSet, VsetPolicy};
use bgl_graph::{DistGraph, GraphSpec};
use std::fmt::Write as _;
use std::time::Instant;

const HELP: &str = "\
bench_setops — hybrid set-kernel and engine wall-clock benchmark

Writes BENCH_setops.json (override with --out).

Flags:
  --span N       slot range of the synthetic union payloads (default 65536)
  --blocks N     overlapping blocks accumulated per union run (default 16)
  --reps N       timing repetitions, best-of (default 5)
  --n N          vertices in the engine benchmark graph (default 60000)
  --degree K     mean degree of the engine benchmark graph (default 8)
  --rows R       processor grid rows (default 8)
  --cols C       processor grid cols (default 8)
  --engine-threads N  rayon worker threads (default: max(4, host cores))
  --out PATH     output path (default BENCH_setops.json)
";

/// Overlapping sorted payloads: block `b` takes every third slot of the
/// span at phase `b % 3`, so consecutive unions are duplicate-heavy —
/// the shape the reduce-scatter fold sees on dense BFS levels.
fn dense_blocks(blocks: u64, span: u64) -> Vec<Vec<Vert>> {
    (0..blocks)
        .map(|b| (0..span).filter(|v| (v + b) % 3 == 0).collect())
        .collect()
}

/// Best-of-`reps` seconds to accumulate every block into one set.
fn time_union(blocks: &[Vec<Vert>], policy: &VsetPolicy, reps: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let mut acc = VertSet::new();
        for b in blocks {
            std::hint::black_box(acc.union_in(b, policy));
        }
        std::hint::black_box(acc.len());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`reps` wall-clock seconds for a full bfs2d run under `engine`.
fn time_engine(graph: &DistGraph, engine: ComputeEngine, reps: u64) -> f64 {
    let config = BfsConfig::paper_optimized().with_engine(engine);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut world = SimWorld::bluegene(graph.grid());
        let start = Instant::now();
        let r = bfs2d::run(graph, &mut world, &config, 0);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(r.stats.sim_time);
    }
    best
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let span = args.u64("span", 1 << 16);
    let blocks = args.u64("blocks", 16);
    let reps = args.u64("reps", 5).max(1);
    let n = args.u64("n", 60_000);
    let degree = args.f64("degree", 8.0);
    let rows = args.u64("rows", 8) as usize;
    let cols = args.u64("cols", 8) as usize;
    let out = args.str("out").unwrap_or("BENCH_setops.json").to_string();

    // The engine benchmark needs real worker threads to mean anything:
    // default to at least 4 even on skinny hosts (the JSON records the
    // true core count separately so consumers can judge the speedup).
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    if args.str("engine-threads").is_some() {
        exp::apply_engine_threads(&args);
    } else {
        rayon::set_worker_threads(host_threads.max(4));
    }
    let engine_threads = rayon::current_num_threads();

    // --- Union kernels: list vs bitmap accumulator. -------------------
    let payload = dense_blocks(blocks, span);
    let elems: u64 = payload.iter().map(|b| b.len() as u64).sum();
    eprintln!("union kernels: {blocks} blocks x span {span} ({elems} elements)");
    let list_s = time_union(&payload, &VsetPolicy::list_only(), reps);
    let bitmap_s = time_union(&payload, &VsetPolicy::hybrid(), reps);
    let list_meps = elems as f64 / list_s / 1e6;
    let bitmap_meps = elems as f64 / bitmap_s / 1e6;
    let union_speedup = list_s / bitmap_s;
    eprintln!("  list    {list_meps:>9.1} Melem/s");
    eprintln!("  bitmap  {bitmap_meps:>9.1} Melem/s   ({union_speedup:.2}x)");
    if union_speedup < 2.0 {
        eprintln!("warning: bitmap union speedup below the 2x target");
    }

    // --- Superstep engine: serial vs rayon wall-clock. ----------------
    let grid = ProcessorGrid::new(rows, cols);
    let spec = GraphSpec::poisson(n, degree, 4242);
    let graph = DistGraph::build(spec, grid);
    eprintln!(
        "engine: n={n} degree={degree} grid {rows}x{cols} \
         ({host_threads} host cores, {engine_threads} worker threads)"
    );
    let serial_s = time_engine(&graph, ComputeEngine::Serial, reps);
    let rayon_s = time_engine(&graph, ComputeEngine::Rayon, reps);
    let engine_speedup = serial_s / rayon_s;
    eprintln!("  serial  {:>9.1} ms", serial_s * 1e3);
    eprintln!(
        "  rayon   {:>9.1} ms   ({engine_speedup:.2}x)",
        rayon_s * 1e3
    );

    // --- Emit (hand-formatted: the bench crate carries no serde). -----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"union_kernels\": {{");
    let _ = writeln!(json, "    \"span\": {span},");
    let _ = writeln!(json, "    \"blocks\": {blocks},");
    let _ = writeln!(json, "    \"elements\": {elems},");
    let _ = writeln!(json, "    \"list_melem_per_s\": {list_meps:.3},");
    let _ = writeln!(json, "    \"bitmap_melem_per_s\": {bitmap_meps:.3},");
    let _ = writeln!(json, "    \"bitmap_speedup\": {union_speedup:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"superstep_engine\": {{");
    let _ = writeln!(json, "    \"n\": {n},");
    let _ = writeln!(json, "    \"degree\": {degree},");
    let _ = writeln!(json, "    \"grid\": \"{rows}x{cols}\",");
    let _ = writeln!(json, "    \"host_threads\": {host_threads},");
    let _ = writeln!(json, "    \"engine_threads\": {engine_threads},");
    let _ = writeln!(json, "    \"serial_ms\": {:.3},", serial_s * 1e3);
    let _ = writeln!(json, "    \"rayon_ms\": {:.3},", rayon_s * 1e3);
    let _ = writeln!(json, "    \"rayon_speedup\": {engine_speedup:.3}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
