//! Table 1 — performance across processor topologies (2D vs 1D).
//!
//! Paper setup: P = 32768; topologies 128×256, 256×128, 32768×1,
//! 1×32768; graphs (|V|,k) = (100000, 10) and (10000, 100); metrics:
//! execution time, communication time, and average expand/fold message
//! length received per processor per level. Findings: 1D communication
//! time is far higher (all P processors in one collective); 1D can still
//! win end-to-end at low degree (cheaper memory access on short expand
//! messages); 2D wins at high degree.
//!
//! Reproduction: same four topology *shapes* at P = 1024 by default
//! (16×64, 64×16, 1024×1, 1×1024), per-rank sizes scaled ÷100.
//!
//! Note on the paper's 1D rows: its 32768×1 entry reports a small
//! non-zero fold length (9032) and 1×32768 a small expand length (6379)
//! — residual node-local hand-off their implementation counts. Our
//! accounting never counts node-local copies as messages, so the
//! degenerate direction reads exactly 0.
//!
//! Flags: `--p 1024` `--scale 100` `--sources 2` `--seed 42` `--csv out.csv`

use bfs_core::{bfs2d, BfsConfig};
use bgl_bench::exp;
use bgl_bench::harness::{fmt_secs, Args, Table};
use bgl_comm::ProcessorGrid;
use bgl_graph::GraphSpec;

const HELP: &str = "\
table1_topologies — reproduce paper Table 1 (2D vs 1D topologies)
  --p <usize>    total processors (default 1024; paper 32768)
  --scale <u64>  divisor on the paper's per-rank |V| (default 100)
  --sources <n>  searches averaged (default 2)
  --seed <u64>   graph seed (default 42)
  --csv <path>   also write CSV
";

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let p = args.usize("p", 1024);
    let scale = args.u64("scale", 100).max(1);
    let n_sources = args.usize("sources", 2);
    let seed = args.u64("seed", 42);

    // The paper's two graphs, scaled.
    let graphs: [(u64, f64); 2] = [(100_000 / scale, 10.0), (10_000 / scale, 100.0)];
    // The paper's four topology shapes, transplanted to P: a 1:2-ish
    // rectangle both ways (paper: 128x256 / 256x128), then the two 1D
    // extremes. When the balanced grid is square (e.g. 32x32 at P=1024),
    // halve one side to recover the paper's rectangle.
    let square = ProcessorGrid::square_ish(p);
    let (mut r0, mut c0) = (square.rows(), square.cols());
    if r0 == c0 && r0 % 2 == 0 {
        r0 /= 2;
        c0 *= 2;
    }
    let topologies: Vec<ProcessorGrid> = vec![
        ProcessorGrid::new(r0, c0),
        ProcessorGrid::new(c0, r0),
        ProcessorGrid::one_d_transposed(p), // P x 1
        ProcessorGrid::one_d(p),            // 1 x P
    ];

    let mut table = Table::new(
        &format!("Table 1 — topology comparison at P = {p} (simulated BG/L)"),
        &[
            "(|V|,k)",
            "R x C",
            "exec_time",
            "comm_time",
            "expand_comm",
            "fold_comm",
            "expand_len/level",
            "fold_len/level",
        ],
    );

    for (gi, &(per_rank, k)) in graphs.iter().enumerate() {
        let n = per_rank.max(1) * p as u64;
        let spec = GraphSpec::poisson(n, k, seed + gi as u64);
        for grid in &topologies {
            let (graph, mut world) = exp::build(spec, *grid);
            let mut exec = 0.0;
            let mut comm = 0.0;
            let mut expand_comm = 0.0;
            let mut fold_comm = 0.0;
            let mut expand_len = 0.0;
            let mut fold_len = 0.0;
            let srcs = exp::sources(n, n_sources);
            for &s in &srcs {
                world.reset();
                let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), s);
                exec += r.stats.sim_time;
                comm += r.stats.comm_time;
                expand_comm += world.comm_time_for(bgl_comm::OpClass::Expand);
                fold_comm += world.comm_time_for(bgl_comm::OpClass::Fold);
                expand_len += r.stats.avg_expand_len_per_level();
                fold_len += r.stats.avg_fold_len_per_level();
            }
            let c = srcs.len() as f64;
            table.push(vec![
                format!("({},{k})", per_rank.max(1)),
                format!("{}x{}", grid.rows(), grid.cols()),
                fmt_secs(exec / c),
                fmt_secs(comm / c),
                fmt_secs(expand_comm / c),
                fmt_secs(fold_comm / c),
                format!("{:.1}", expand_len / c),
                format!("{:.1}", fold_len / c),
            ]);
            eprintln!(
                "  … ({per_rank},{k}) on {}x{} done",
                grid.rows(),
                grid.cols()
            );
        }
    }
    table.emit(args.str("csv"));
    println!(
        "\npaper claims: (1) 1D comm time is much higher than 2D (all P processors \
         collectivize); (2) expand/fold lengths swap roles between P x 1 and 1 x P; \
         (3) 2D wins for high degree, 1D can win end-to-end at low degree."
    );
}
