//! Evidence for the lane-masked batched path walk: runs one BFS to get
//! a level array, then extracts batches of shortest paths two ways —
//! the batched `path::multi` wave versus one standalone `extract_path`
//! per target on fresh worlds — across a sweep of batch widths. Writes
//! `BENCH_path.json`.
//!
//! With `--check` the binary exits non-zero when the numbers miss the
//! PR's acceptance floors (CI smoke; the gates read simulated clocks
//! and deterministic counters — no wall time, so the step is stable on
//! slow runners):
//!
//! * every lane of the B=16 batched walk is byte-identical to its
//!   standalone `extract_path`;
//! * the batched walk's simulated time at B=16 is ≥ 2× cheaper than the
//!   16 sequential extractions it replaces;
//! * the walk executes exactly three control rounds per hop, and hop
//!   count equals the deepest target's level.
//!
//! ```text
//! cargo run --release -p bgl-bench --bin bench_path [-- --check]
//! ```

use bfs_core::{bfs2d, path, BfsConfig};
use bgl_bench::harness::Args;
use bgl_comm::{ProcessorGrid, SimWorld, WirePolicy};
use bgl_graph::{DistGraph, GraphSpec, Vertex};
use std::fmt::Write as _;

const HELP: &str = "\
bench_path — batched shortest-path extraction benchmark

Writes BENCH_path.json (override with --out).

Flags:
  --n N           vertices in the benchmark graph (default 60000)
  --degree K      mean degree (default 16)
  --graph G       rmat | poisson (default rmat)
  --seed S        generator seed (default 4242)
  --rows R        processor grid rows (default 8)
  --cols C        processor grid cols (default 8)
  --source V      BFS root the level array is built from (default 0)
  --widths LIST   batch widths to sweep (default 1,4,16,64)
  --out PATH      output path (default BENCH_path.json)
  --check         exit non-zero if acceptance floors are missed (CI)
";

/// Batched-over-sequential simulated-time floor checked by `--check`.
const MIN_SPEEDUP: f64 = 2.0;
/// The sweep width the gates read.
const GATE_WIDTH: usize = 16;

struct SweepRun {
    width: usize,
    hops: u32,
    rounds: u64,
    batched_sim_s: f64,
    sequential_sim_s: f64,
    speedup: f64,
    identical: bool,
}

/// Deterministic target pool: reached vertices at strictly positive
/// level, deepest first (ties by id), then strided so a small batch
/// still spans a range of depths and owner columns.
fn target_pool(levels: &[u32], want: usize) -> Vec<Vertex> {
    let unreached = u32::MAX;
    let mut reached: Vec<Vertex> = (0..levels.len() as u64)
        .filter(|&v| levels[v as usize] != unreached && levels[v as usize] > 0)
        .collect();
    reached.sort_by_key(|&v| (std::cmp::Reverse(levels[v as usize]), v));
    let stride = (reached.len() / want.max(1)).max(1);
    reached.into_iter().step_by(stride).take(want).collect()
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 60_000);
    let degree = args.f64("degree", 16.0);
    let seed = args.u64("seed", 4242);
    let rows = args.u64("rows", 8) as usize;
    let cols = args.u64("cols", 8) as usize;
    let source = args.u64("source", 0);
    let widths: Vec<usize> = args
        .u64_list("widths", &[1, 4, 16, 64])
        .into_iter()
        .map(|w| w as usize)
        .collect();
    let out = args.str("out").unwrap_or("BENCH_path.json").to_string();
    let check = args.bool("check", false);
    let kind = args.str("graph").unwrap_or("rmat");

    let spec = match kind {
        "rmat" => GraphSpec::rmat(n, degree, seed),
        "poisson" => GraphSpec::poisson(n, degree, seed),
        other => panic!("--graph: {other:?} (expected rmat or poisson)"),
    };
    let grid = ProcessorGrid::new(rows, cols);
    eprintln!("path workload: {kind} n={n} degree={degree} grid {rows}x{cols} source {source}");
    let graph = DistGraph::build(spec, grid);
    let wire = WirePolicy::auto();

    // One BFS supplies the level array every extraction reads — the
    // serving-layer shape, where Path queries hit a cached array.
    let mut bfs_world = SimWorld::bluegene(grid).with_wire_policy(wire);
    let bfs = bfs2d::run(
        &graph,
        &mut bfs_world,
        &BfsConfig::paper_optimized(),
        source,
    );
    let levels = &bfs.levels;
    let max_width = widths.iter().copied().max().unwrap_or(GATE_WIDTH);
    let pool = target_pool(levels, max_width.max(GATE_WIDTH));
    assert!(
        !pool.is_empty(),
        "BFS from {source} reached nothing; pick a connected source"
    );
    let deepest = levels[pool[0] as usize];
    eprintln!(
        "  level array ready: {} candidate targets, deepest at level {deepest}",
        pool.len()
    );

    let mut sweep: Vec<SweepRun> = Vec::new();
    for &width in &widths {
        let targets: Vec<Vertex> = pool.iter().copied().take(width).collect();
        if targets.is_empty() {
            continue;
        }

        // Batched: one wave, all targets as lanes, one shared world.
        let mut bworld = SimWorld::bluegene(grid).with_wire_policy(wire);
        let batched = path::multi(&graph, &mut bworld, levels, source, &targets);

        // Sequential baseline: one fresh world per target, the
        // pre-batching serving cost of the same queries.
        let mut sequential_sim_s = 0.0;
        let mut identical = true;
        for (lane, &t) in targets.iter().enumerate() {
            let mut sworld = SimWorld::bluegene(grid).with_wire_policy(wire);
            let single = path::extract_path(&graph, &mut sworld, levels, source, t);
            sequential_sim_s += sworld.time();
            if batched.paths[lane] != single {
                eprintln!("  lane {lane} (target {t}) diverged from extract_path");
                identical = false;
            }
        }
        let speedup = if batched.sim_time > 0.0 {
            sequential_sim_s / batched.sim_time
        } else {
            0.0
        };
        eprintln!(
            "  B={width:<3} {} hops, {} rounds, batched {:>8.3} ms vs sequential {:>8.3} ms \
             ({speedup:.2}x), identical: {identical}",
            batched.hops,
            batched.rounds,
            batched.sim_time * 1e3,
            sequential_sim_s * 1e3
        );
        sweep.push(SweepRun {
            width: targets.len(),
            hops: batched.hops,
            rounds: batched.rounds,
            batched_sim_s: batched.sim_time,
            sequential_sim_s,
            speedup,
            identical,
        });
    }

    let gate = sweep.iter().find(|r| r.width == GATE_WIDTH);
    let gate_speedup = gate.map_or(0.0, |r| r.speedup);
    let gate_identical = gate.is_some_and(|r| r.identical);
    let gate_rounds_ok = gate.is_some_and(|r| r.rounds == 3 * u64::from(r.hops));
    let gate_depth_ok = gate.is_some_and(|r| {
        let deepest_in_batch = pool
            .iter()
            .take(GATE_WIDTH)
            .map(|&t| levels[t as usize])
            .max()
            .unwrap_or(0);
        r.hops == deepest_in_batch
    });
    eprintln!("  batched B={GATE_WIDTH} vs sequential simulated time: {gate_speedup:.2}x");

    // --- Emit (hand-formatted: the bench crate carries no serde). -----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"graph\": {{");
    let _ = writeln!(json, "    \"kind\": \"{kind}\",");
    let _ = writeln!(json, "    \"n\": {n},");
    let _ = writeln!(json, "    \"degree\": {degree},");
    let _ = writeln!(json, "    \"seed\": {seed},");
    let _ = writeln!(json, "    \"grid\": \"{rows}x{cols}\"");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"source\": {source},");
    let _ = writeln!(json, "  \"deepest_target_level\": {deepest},");
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, r) in sweep.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"batch_width\": {},", r.width);
        let _ = writeln!(json, "      \"hops\": {},", r.hops);
        let _ = writeln!(json, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(
            json,
            "      \"batched_sim_ms\": {:.6},",
            r.batched_sim_s * 1e3
        );
        let _ = writeln!(
            json,
            "      \"sequential_sim_ms\": {:.6},",
            r.sequential_sim_s * 1e3
        );
        let _ = writeln!(json, "      \"speedup\": {:.3},", r.speedup);
        let _ = writeln!(json, "      \"identical\": {}", r.identical);
        let _ = writeln!(json, "    }}{}", if i + 1 < sweep.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"gate_width\": {GATE_WIDTH},");
    let _ = writeln!(json, "  \"gate_speedup\": {gate_speedup:.3},");
    let _ = writeln!(json, "  \"gate_identical\": {gate_identical}");
    json.push_str("}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if check {
        let mut failed = false;
        if gate.is_none() {
            eprintln!("FAIL: the sweep never ran B={GATE_WIDTH} (check --widths)");
            failed = true;
        }
        if !gate_identical {
            eprintln!("FAIL: a batched lane differs from its standalone extract_path");
            failed = true;
        }
        if gate_speedup < MIN_SPEEDUP {
            eprintln!(
                "FAIL: B={GATE_WIDTH} batched walk {gate_speedup:.2}x over sequential is below \
                 the {MIN_SPEEDUP}x floor"
            );
            failed = true;
        }
        if !gate_rounds_ok {
            eprintln!("FAIL: walk did not spend exactly three control rounds per hop");
            failed = true;
        }
        if !gate_depth_ok {
            eprintln!("FAIL: hop count does not match the deepest target's level");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed");
    }
}
