//! Host-side evidence for the wire-codec PR: measures how many bytes
//! the adaptive codec takes off the simulated torus links, what that
//! does to simulated BFS time, and what the rayon-parallel superstep
//! scheduler does to host wall-clock. Writes `BENCH_wire.json`.
//!
//! With `--check` the binary exits non-zero when the numbers miss the
//! PR's acceptance floors (CI smoke):
//!
//! * wire compression ratio on the default Poisson graph ≥ 1.5× —
//!   deterministic, checked unconditionally;
//! * rayon superstep speedup ≥ 1.2× — wall-clock, only checked when
//!   the host really has ≥ 4 cores (a 1-core runner cannot speed up).
//!
//! ```text
//! cargo run --release -p bgl-bench --bin bench_wire [-- --check]
//! ```

use bfs_core::{bfs2d, BfsConfig, ComputeEngine};
use bgl_bench::exp;
use bgl_bench::harness::Args;
use bgl_comm::{ProcessorGrid, SimWorld, WireMode, WirePolicy};
use bgl_graph::{DistGraph, GraphSpec};
use std::fmt::Write as _;
use std::time::Instant;

const HELP: &str = "\
bench_wire — wire-codec compression and parallel-superstep benchmark

Writes BENCH_wire.json (override with --out).

Flags:
  --n N          vertices in the benchmark graph (default 60000)
  --degree K     mean degree (default 10)
  --rows R       processor grid rows (default 8)
  --cols C       processor grid cols (default 8)
  --reps N       wall-clock timing repetitions, best-of (default 5)
  --engine-threads N  rayon worker threads (default: max(4, host cores))
  --out PATH     output path (default BENCH_wire.json)
  --check        exit non-zero if acceptance floors are missed (CI)
";

/// Compression floor checked unconditionally (deterministic).
const MIN_COMPRESSION: f64 = 1.5;
/// Speedup floor checked only on hosts with at least this many cores.
const MIN_SPEEDUP: f64 = 1.2;
const SPEEDUP_MIN_CORES: usize = 4;

/// One simulated run under `mode`; returns (logical, wire, sim_time,
/// codec_time).
fn coded_run(graph: &DistGraph, mode: WireMode) -> (u64, u64, f64, f64) {
    let mut world = SimWorld::bluegene(graph.grid()).with_wire_policy(WirePolicy::with_mode(mode));
    let r = bfs2d::run(graph, &mut world, &BfsConfig::paper_optimized(), 0);
    (
        r.stats.comm.total_logical_bytes(),
        r.stats.comm.total_wire_bytes(),
        r.stats.sim_time,
        r.stats.codec_time,
    )
}

/// Best-of-`reps` host wall-clock seconds for a full coded run under
/// `engine`.
fn time_engine(graph: &DistGraph, engine: ComputeEngine, reps: u64) -> f64 {
    let config = BfsConfig::paper_optimized().with_engine(engine);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut world = SimWorld::bluegene(graph.grid()).with_wire_policy(WirePolicy::auto());
        let start = Instant::now();
        let r = bfs2d::run(graph, &mut world, &config, 0);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(r.stats.sim_time);
    }
    best
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 60_000);
    let degree = args.f64("degree", 10.0);
    let rows = args.u64("rows", 8) as usize;
    let cols = args.u64("cols", 8) as usize;
    let reps = args.u64("reps", 5).max(1);
    let out = args.str("out").unwrap_or("BENCH_wire.json").to_string();
    let check = args.bool("check", false);

    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    if args.str("engine-threads").is_some() {
        exp::apply_engine_threads(&args);
    } else {
        rayon::set_worker_threads(host_threads.max(4));
    }
    let engine_threads = rayon::current_num_threads();

    let grid = ProcessorGrid::new(rows, cols);
    let spec = GraphSpec::poisson(n, degree, 4242);
    let graph = DistGraph::build(spec, grid);

    // --- Compression: every codec mode over the same search. ----------
    eprintln!("wire codec: n={n} degree={degree} grid {rows}x{cols}");
    let modes = [
        WireMode::Raw,
        WireMode::Delta,
        WireMode::Bitmap,
        WireMode::Auto,
    ];
    let mut per_mode = Vec::new();
    for mode in modes {
        let (logical, wire, sim_s, codec_s) = coded_run(&graph, mode);
        let ratio = if wire == 0 {
            1.0
        } else {
            logical as f64 / wire as f64
        };
        eprintln!(
            "  {:<6} {:>8.2} MB on the wire ({ratio:>5.2}x), sim {:>7.3} ms ({:.3} ms codec)",
            mode.name(),
            wire as f64 / 1e6,
            sim_s * 1e3,
            codec_s * 1e3
        );
        per_mode.push((mode, logical, wire, ratio, sim_s, codec_s));
    }
    let auto = per_mode[3];
    let raw = per_mode[0];
    let compression = auto.3;
    let sim_speedup = raw.4 / auto.4;
    eprintln!("  auto codec: {compression:.2}x fewer bytes, {sim_speedup:.2}x simulated speedup");

    // --- Superstep scheduler: serial vs rayon host wall-clock. --------
    eprintln!("engine: {host_threads} host cores, {engine_threads} worker threads");
    let serial_s = time_engine(&graph, ComputeEngine::Serial, reps);
    let rayon_s = time_engine(&graph, ComputeEngine::Rayon, reps);
    let engine_speedup = serial_s / rayon_s;
    eprintln!("  serial  {:>9.1} ms", serial_s * 1e3);
    eprintln!(
        "  rayon   {:>9.1} ms   ({engine_speedup:.2}x)",
        rayon_s * 1e3
    );

    // --- Emit (hand-formatted: the bench crate carries no serde). -----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"graph\": {{");
    let _ = writeln!(json, "    \"n\": {n},");
    let _ = writeln!(json, "    \"degree\": {degree},");
    let _ = writeln!(json, "    \"grid\": \"{rows}x{cols}\"");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"wire\": {{");
    for (i, (mode, logical, wire, ratio, sim_s, codec_s)) in per_mode.iter().enumerate() {
        let comma = if i + 1 < per_mode.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"logical_bytes\": {logical}, \"wire_bytes\": {wire}, \
             \"compression_ratio\": {ratio:.3}, \"sim_ms\": {:.3}, \"codec_ms\": {:.3} }}{comma}",
            mode.name(),
            sim_s * 1e3,
            codec_s * 1e3
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"compression_ratio\": {compression:.3},");
    let _ = writeln!(json, "  \"sim_speedup_auto_vs_raw\": {sim_speedup:.3},");
    let _ = writeln!(json, "  \"superstep_engine\": {{");
    let _ = writeln!(json, "    \"host_threads\": {host_threads},");
    let _ = writeln!(json, "    \"engine_threads\": {engine_threads},");
    let _ = writeln!(json, "    \"serial_ms\": {:.3},", serial_s * 1e3);
    let _ = writeln!(json, "    \"rayon_ms\": {:.3},", rayon_s * 1e3);
    let _ = writeln!(json, "    \"rayon_speedup\": {engine_speedup:.3}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if check {
        let mut failed = false;
        if compression < MIN_COMPRESSION {
            eprintln!(
                "FAIL: wire compression {compression:.2}x below the {MIN_COMPRESSION}x floor"
            );
            failed = true;
        }
        if host_threads >= SPEEDUP_MIN_CORES {
            if engine_speedup < MIN_SPEEDUP {
                eprintln!(
                    "FAIL: rayon speedup {engine_speedup:.2}x below the {MIN_SPEEDUP}x floor \
                     on a {host_threads}-core host"
                );
                failed = true;
            }
        } else {
            eprintln!(
                "note: speedup gate skipped ({host_threads} host cores < {SPEEDUP_MIN_CORES})"
            );
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed");
    }
}
