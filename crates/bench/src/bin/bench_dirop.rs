//! Evidence for the direction-optimizing BFS PR: runs the same search
//! pure top-down and with the adaptive Beamer-style direction switch,
//! and reports the hash-probe and simulated-time savings. Writes
//! `BENCH_dirop.json`.
//!
//! With `--check` the binary exits non-zero when the numbers miss the
//! PR's acceptance floors (CI smoke; every gate is deterministic — no
//! wall-clock is measured, so the step is stable on slow runners):
//!
//! * per-vertex levels bit-identical between the two modes and the
//!   Graph500 validator passes on both;
//! * at least one level actually runs bottom-up;
//! * total hash probes reduced ≥ 2×;
//! * simulated time reduced (ratio > 1).
//!
//! ```text
//! cargo run --release -p bgl-bench --bin bench_dirop [-- --check]
//! ```

use bfs_core::{bfs2d, validate, BfsConfig};
use bgl_bench::harness::Args;
use bgl_comm::{ProcessorGrid, SimWorld, WirePolicy};
use bgl_graph::{DistGraph, GraphSpec};
use std::fmt::Write as _;

const HELP: &str = "\
bench_dirop — direction-optimizing BFS probe/time savings benchmark

Writes BENCH_dirop.json (override with --out).

Flags:
  --n N          vertices in the benchmark graph (default 60000)
  --degree K     mean degree (default 16)
  --graph G      rmat | poisson (default rmat — the low-diameter
                 scale-free shape the direction switch targets)
  --seed S       generator seed (default 4242)
  --rows R       processor grid rows (default 8)
  --cols C       processor grid cols (default 8)
  --source V     BFS source vertex (default 0)
  --out PATH     output path (default BENCH_dirop.json)
  --check        exit non-zero if acceptance floors are missed (CI)
";

/// Probe-reduction floor checked by `--check` (deterministic).
const MIN_PROBE_RATIO: f64 = 2.0;

struct ModeRun {
    name: &'static str,
    probes: u64,
    sim_s: f64,
    comm_s: f64,
    bu_levels: usize,
    levels: Vec<u32>,
    stats: bfs_core::RunStats,
}

/// One simulated run; both modes go through the auto wire codec so the
/// bottom-up frontier gather rides bitmap frames where dense.
fn mode_run(graph: &DistGraph, config: &BfsConfig, name: &'static str, source: u64) -> ModeRun {
    let mut world = SimWorld::bluegene(graph.grid()).with_wire_policy(WirePolicy::auto());
    let r = bfs2d::run(graph, &mut world, config, source);
    let (_, bu) = r.stats.direction_split();
    ModeRun {
        name,
        probes: r.stats.total_probes(),
        sim_s: r.stats.sim_time,
        comm_s: r.stats.comm_time,
        bu_levels: bu,
        levels: r.levels,
        stats: r.stats,
    }
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 60_000);
    let degree = args.f64("degree", 16.0);
    let seed = args.u64("seed", 4242);
    let rows = args.u64("rows", 8) as usize;
    let cols = args.u64("cols", 8) as usize;
    let source = args.u64("source", 0).min(n - 1);
    let out = args.str("out").unwrap_or("BENCH_dirop.json").to_string();
    let check = args.bool("check", false);
    let kind = args.str("graph").unwrap_or("rmat");

    let spec = match kind {
        "rmat" => GraphSpec::rmat(n, degree, seed),
        "poisson" => GraphSpec::poisson(n, degree, seed),
        other => panic!("--graph: {other:?} (expected rmat or poisson)"),
    };
    let grid = ProcessorGrid::new(rows, cols);
    eprintln!("direction-optimizing BFS: {kind} n={n} degree={degree} grid {rows}x{cols}");
    let graph = DistGraph::build(spec, grid);

    let td = mode_run(&graph, &BfsConfig::paper_optimized(), "top_down", source);
    let adaptive = mode_run(
        &graph,
        &BfsConfig::direction_optimized(),
        "adaptive",
        source,
    );

    let levels_identical = td.levels == adaptive.levels;
    let probe_ratio = if adaptive.probes == 0 {
        f64::INFINITY
    } else {
        td.probes as f64 / adaptive.probes as f64
    };
    let sim_ratio = if adaptive.sim_s == 0.0 {
        f64::INFINITY
    } else {
        td.sim_s / adaptive.sim_s
    };
    let validated: Vec<(&str, bool)> = [&td, &adaptive]
        .iter()
        .map(|m| {
            (
                m.name,
                validate::validate_against_spec(&spec, &m.levels, source).is_ok(),
            )
        })
        .collect();

    for m in [&td, &adaptive] {
        eprintln!(
            "  {:<9} {:>12} probes, sim {:>7.3} ms ({:>6.3} ms comm), {} bottom-up levels",
            m.name,
            m.probes,
            m.sim_s * 1e3,
            m.comm_s * 1e3,
            m.bu_levels
        );
    }
    eprintln!(
        "  probes {probe_ratio:.2}x fewer, sim time {sim_ratio:.2}x faster, levels identical: \
         {levels_identical}"
    );
    eprintln!("  per-level directions (adaptive):");
    for l in &adaptive.stats.levels {
        eprintln!(
            "    level {:>2} {:<2} frontier {:>8}  td_probes {:>10}  bu_probes {:>10}",
            l.level,
            l.direction.label(),
            l.frontier,
            l.td_probes,
            l.bu_probes
        );
    }

    // --- Emit (hand-formatted: the bench crate carries no serde). -----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"graph\": {{");
    let _ = writeln!(json, "    \"kind\": \"{kind}\",");
    let _ = writeln!(json, "    \"n\": {n},");
    let _ = writeln!(json, "    \"degree\": {degree},");
    let _ = writeln!(json, "    \"seed\": {seed},");
    let _ = writeln!(json, "    \"grid\": \"{rows}x{cols}\"");
    let _ = writeln!(json, "  }},");
    for (i, m) in [&td, &adaptive].iter().enumerate() {
        let _ = writeln!(json, "  \"{}\": {{", m.name);
        let _ = writeln!(json, "    \"total_probes\": {},", m.probes);
        let _ = writeln!(json, "    \"sim_ms\": {:.3},", m.sim_s * 1e3);
        let _ = writeln!(json, "    \"comm_ms\": {:.3},", m.comm_s * 1e3);
        let _ = writeln!(json, "    \"bottom_up_levels\": {},", m.bu_levels);
        let _ = writeln!(json, "    \"validated\": {},", validated[i].1);
        let dirs: Vec<&str> = m.stats.levels.iter().map(|l| l.direction.label()).collect();
        let _ = writeln!(
            json,
            "    \"directions\": [{}],",
            dirs.iter()
                .map(|d| format!("\"{d}\""))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let frontiers: Vec<String> = m
            .stats
            .levels
            .iter()
            .map(|l| l.frontier.to_string())
            .collect();
        let _ = writeln!(json, "    \"frontiers\": [{}]", frontiers.join(", "));
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"probe_ratio\": {probe_ratio:.3},");
    let _ = writeln!(json, "  \"sim_time_ratio\": {sim_ratio:.3},");
    let _ = writeln!(json, "  \"levels_identical\": {levels_identical}");
    json.push_str("}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if check {
        let mut failed = false;
        if !levels_identical {
            eprintln!("FAIL: adaptive levels differ from pure top-down");
            failed = true;
        }
        for (name, ok) in &validated {
            if !ok {
                eprintln!("FAIL: {name} levels failed Graph500-style validation");
                failed = true;
            }
        }
        if adaptive.bu_levels == 0 {
            eprintln!("FAIL: the adaptive run never switched to bottom-up");
            failed = true;
        }
        if probe_ratio < MIN_PROBE_RATIO {
            eprintln!("FAIL: probe reduction {probe_ratio:.2}x below the {MIN_PROBE_RATIO}x floor");
            failed = true;
        }
        if sim_ratio <= 1.0 {
            eprintln!("FAIL: adaptive simulated time is not faster ({sim_ratio:.2}x)");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed");
    }
}
