//! Figure 4.a — weak-scaling of the distributed BFS.
//!
//! Paper setup: 32,768-node BlueGene/L; per-processor graph size fixed
//! at |V| ∈ {100000, 20000, 10000, 5000} vertices with average degree
//! k ∈ {10, 50, 100, 200} (|V|·k = 10⁶ per processor); mean search time
//! grows ∝ log P, and communication time is a small fraction of the
//! total. Largest graph: 3.2 G vertices / 32 G edges.
//!
//! Reproduction: identical shape at 1/100 per-rank scale (|V|·k = 10⁴
//! per rank) on the simulated torus, P up to 1024 by default. The log-P
//! regression slope and the comm/total ratio are printed alongside.
//!
//! Flags: `--ps 1,4,16,64,256,1024` `--scale 100` (divisor applied to
//! paper's per-rank |V|) `--sources 3` `--csv out.csv`

use bfs_core::BfsConfig;
use bgl_bench::exp;
use bgl_bench::harness::{fmt_secs, Args, Table};
use bgl_comm::ProcessorGrid;
use bgl_graph::GraphSpec;

const HELP: &str = "\
fig4a_weak_scaling — reproduce paper Figure 4.a (weak scaling)
  --ps <list>     processor counts (default 1,4,16,64,256,1024)
  --scale <u64>   divisor on the paper's per-rank |V| (default 100)
  --sources <n>   searches averaged per point (default 3)
  --seed <u64>    graph seed (default 42)
  --csv <path>    also write CSV
  --trace-out <dir>  after the sweep, run one traced search at the largest
                     P (k=10 series) and write TRACE_chrome.json +
                     TRACE_summary.json there, printing the critical path
";

/// The paper's four weak-scaling series: (per-rank |V| at scale 1, k).
const SERIES: [(u64, f64); 4] = [
    (100_000, 10.0),
    (20_000, 50.0),
    (10_000, 100.0),
    (5_000, 200.0),
];

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let ps = args.u64_list("ps", &[1, 4, 16, 64, 256, 1024]);
    let scale = args.u64("scale", 100).max(1);
    let n_sources = args.usize("sources", 3);
    let seed = args.u64("seed", 42);

    let headers: Vec<String> = SERIES
        .iter()
        .map(|&(v, k)| format!("|V|={},k={}", (v / scale).max(1), k))
        .collect();
    let columns: Vec<&str> = vec![
        "P",
        "grid",
        &headers[0],
        "comm(k=10)",
        &headers[1],
        &headers[2],
        &headers[3],
    ];
    let mut table = Table::new(
        "Figure 4.a — weak scaling, mean search time (simulated BG/L seconds)",
        &columns,
    );
    let mut comm_ratio_largest = 0.0;

    let mut k10_times: Vec<(f64, f64)> = Vec::new();
    for &p in &ps {
        let grid = ProcessorGrid::square_ish(p as usize);
        let mut cells: Vec<String> =
            vec![p.to_string(), format!("{}x{}", grid.rows(), grid.cols())];
        let mut comm_cell = String::new();
        for (idx, &(v_full, k)) in SERIES.iter().enumerate() {
            let per_rank = (v_full / scale).max(1);
            let n = per_rank * p;
            let spec = GraphSpec::poisson(n, k.min(n as f64 - 1.0), seed + idx as u64);
            let (graph, mut world) = exp::build(spec, grid);
            let m = exp::mean_search(
                &graph,
                &mut world,
                &BfsConfig::paper_optimized(),
                &exp::sources(n, n_sources),
            );
            if idx == 0 {
                comm_cell = fmt_secs(m.comm);
                k10_times.push((p as f64, m.exec));
                comm_ratio_largest = m.comm / m.exec;
            }
            cells.push(fmt_secs(m.exec));
            if idx == 0 {
                cells.push(comm_cell.clone());
            }
        }
        table.push(cells);
        eprintln!("  … P={p} done");
    }
    table.emit(args.str("csv"));

    if k10_times.len() >= 3 {
        let xs: Vec<f64> = k10_times.iter().map(|&(p, _)| p).collect();
        let ys: Vec<f64> = k10_times.iter().map(|&(_, t)| t).collect();
        let (a, b, r2) = exp::fit_log(&xs, &ys);
        println!("\nlog-P regression (k=10 series): time ≈ {a:.4} + {b:.4}·log2(P), R² = {r2:.3}");
        println!("paper claim: execution time grows ∝ log P (diameter of the random graph).");
        println!(
            "comm/total at largest P: {:.0}% — the paper observes a small fraction at \
             per-rank |V| = 100000; the ratio shrinks as --scale approaches 1 \
             (per-rank compute grows ~linearly while per-message overhead is fixed).",
            comm_ratio_largest * 100.0
        );
    }

    if let Some(dir) = args.str("trace-out") {
        let &p = ps.last().expect("at least one processor count");
        let (v_full, k) = SERIES[0];
        let per_rank = (v_full / scale).max(1);
        let n = per_rank * p;
        let grid = ProcessorGrid::square_ish(p as usize);
        let spec = GraphSpec::poisson(n, k.min(n as f64 - 1.0), seed);
        let (graph, mut world) = exp::build(spec, grid);
        let source = exp::sources(n, 1)[0];
        let report = exp::traced_search(
            &graph,
            &mut world,
            &BfsConfig::paper_optimized(),
            source,
            std::path::Path::new(dir),
        )
        .unwrap_or_else(|e| panic!("--trace-out {dir:?}: {e}"));
        println!(
            "\ntraced search at P={p}: wrote {} and {}",
            report.chrome_path.display(),
            report.summary_path.display()
        );
        print!("{}", report.critical.render_table());
    }
}
