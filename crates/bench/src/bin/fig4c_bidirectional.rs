//! Figure 4.c — bi-directional vs uni-directional search, weak scaling.
//!
//! Paper setup: weak scaling at k = 10, P = 100..10000; bi-directional
//! search scales ∝ log P like the uni-directional one but is faster —
//! "the search time of the bi-directional BFS in the worst case is only
//! 33% of that of the uni-directional BFS", because it walks a shorter
//! distance and moves "orders of magnitude" less volume per processor.
//!
//! Reproduction: same comparison on the simulated machine, default
//! per-rank |V| = 1000 (paper 100000), endpoints drawn far apart. Both
//! mean simulated time and the received-volume ratio are reported.
//!
//! Flags: `--ps 16,64,256,1024` `--per-rank 1000` `--k 10` `--pairs 3`
//! `--seed 42` `--csv out.csv` `--wire auto|raw|delta|bitmap`
//! `--engine serial|rayon|auto` `--engine-threads N`

use bfs_core::{bfs2d, bidir, BfsConfig};
use bgl_bench::exp;
use bgl_bench::harness::{fmt_secs, Args, Table};
use bgl_comm::ProcessorGrid;
use bgl_graph::GraphSpec;

const HELP: &str = "\
fig4c_bidirectional — reproduce paper Figure 4.c (bi- vs uni-directional)
  --ps <list>       processor counts (default 16,64,256,1024)
  --per-rank <u64>  vertices per rank (default 1000; paper 100000)
  --k <f64>         average degree (default 10)
  --pairs <n>       source/target pairs averaged (default 3)
  --seed <u64>      graph seed (default 42)
  --csv <path>      also write CSV
  --wire <mode>     wire codec: auto|raw|delta|bitmap (default raw)
  --engine <e>      compute engine: serial|rayon|auto (default auto)
  --engine-threads <n>  rayon worker threads (default: one per core)
";

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let ps = args.u64_list("ps", &[16, 64, 256, 1024]);
    let per_rank = args.u64("per-rank", 1000);
    let k = args.f64("k", 10.0);
    let n_pairs = args.usize("pairs", 3);
    let seed = args.u64("seed", 42);
    let wire = exp::wire_policy(&args);
    exp::apply_engine_threads(&args);
    let config = BfsConfig::paper_optimized().with_engine(exp::engine(&args));

    let mut table = Table::new(
        "Figure 4.c — bi-directional vs uni-directional BFS (simulated seconds)",
        &[
            "P",
            "uni_time",
            "bidi_time",
            "bidi/uni",
            "uni_recv",
            "bidi_recv",
            "vol_ratio",
        ],
    );

    let mut worst_ratio = 0.0f64;
    for &p in &ps {
        let n = per_rank * p;
        let grid = ProcessorGrid::square_ish(p as usize);
        let spec = GraphSpec::poisson(n, k, seed);
        let (graph, mut world) = exp::build(spec, grid);
        world = world.with_wire_policy(wire);

        // Endpoint pairs spread across the vertex space.
        let srcs = exp::sources(n, n_pairs);
        let pairs: Vec<(u64, u64)> = srcs.iter().map(|&s| (s, (s + n / 2 + 1) % n)).collect();

        let mut uni_time = 0.0;
        let mut uni_recv = 0u64;
        for &(s, t) in &pairs {
            world.reset();
            let r = bfs2d::run(&graph, &mut world, &config.clone().with_target(t), s);
            uni_time += r.stats.sim_time;
            uni_recv += r.stats.total_received();
        }
        let mut bidi_time = 0.0;
        let mut bidi_recv = 0u64;
        for &(s, t) in &pairs {
            world.reset();
            let r = bidir::run(&graph, &mut world, &config, s, t);
            bidi_time += r.stats.sim_time;
            bidi_recv += r.stats.total_received();
        }
        uni_time /= pairs.len() as f64;
        bidi_time /= pairs.len() as f64;
        let ratio = bidi_time / uni_time;
        worst_ratio = worst_ratio.max(ratio);
        let vol_ratio = bidi_recv as f64 / uni_recv.max(1) as f64;
        table.push(vec![
            p.to_string(),
            fmt_secs(uni_time),
            fmt_secs(bidi_time),
            format!("{ratio:.2}"),
            uni_recv.to_string(),
            bidi_recv.to_string(),
            format!("{vol_ratio:.3}"),
        ]);
        eprintln!("  … P={p} done");
    }
    table.emit(args.str("csv"));
    println!(
        "\nworst bidi/uni time ratio observed: {worst_ratio:.2} \
         (paper: bi-directional worst case is 33% of uni-directional)."
    );
}
