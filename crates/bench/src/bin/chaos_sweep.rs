//! Chaos sweep — randomized fault schedules fuzzed across the engine
//! and wire-codec matrix, with differential and Graph500-style checks.
//!
//! Each cell draws a deterministic [`ChaosSpec`] from a fault seed
//! (scheduled rank deaths — at most one per parity group — plus
//! randomized drop/truncate/duplicate probabilities), then runs the
//! parity-group checkpoint/recover engine
//! ([`bfs_core::bfs2d::run_resilient`]) under every requested
//! `wire × engine` combination. Every surviving run is checked three
//! ways:
//!
//! * **differential** — levels bit-identical to the fault-free
//!   reference run (and therefore to every sibling cell);
//! * **validated** — the Graph500-style invariants of
//!   [`bfs_core::validate`] hold (rooted tree, tree edges exist,
//!   neighbor levels differ by at most one, unreached means
//!   disconnected);
//! * **parity-recovered** — with at most one death per group the
//!   engine must reconstruct from parity, never fall back to a
//!   degraded full restart.
//!
//! Writes `BENCH_resilience.json`. With `--check` the binary exits
//! non-zero when any cell dies, diverges, fails validation, or
//! degrades (CI gate).
//!
//! ```text
//! cargo run --release -p bgl-bench --bin chaos_sweep [-- --check]
//! ```

use bfs_core::{bfs2d, validate, BfsConfig, ComputeEngine, ResilientConfig};
use bgl_bench::harness::{Args, Table};
use bgl_comm::{ChaosSpec, FaultPlan, ProcessorGrid, SimWorld, WireMode, WirePolicy};
use bgl_graph::{DistGraph, GraphSpec};
use std::fmt::Write as _;

const HELP: &str = "\
chaos_sweep — randomized fault schedules x {wire codec} x {engine}, differentially checked

Writes BENCH_resilience.json (override with --out).

Flags:
  --n N            vertices in the sweep graph (default 8000)
  --k K            mean degree (default 6)
  --rows R         processor grid rows (default 2)
  --cols C         processor grid cols (default 4)
  --seed S         graph seed (default 42)
  --group G        parity-group size (default 4)
  --fault-seeds L  comma-separated chaos seeds (default 1,2,3,4,5)
  --wires L        comma-separated wire modes (default raw,auto)
  --out PATH       output path (default BENCH_resilience.json)
  --check          exit non-zero unless every cell recovers bit-identically,
                   validates, and never needs a degraded restart (CI)
";

/// One sweep cell's outcome, ready for the table and the JSON dump.
struct Cell {
    fault_seed: u64,
    wire: WireMode,
    engine: &'static str,
    deaths: usize,
    outcome: Result<CellStats, String>,
}

/// Counters recorded for a surviving cell.
struct CellStats {
    recoveries: u32,
    degraded_restarts: u32,
    retransmissions: u64,
    drops: u64,
    sim_ms: f64,
    recovery_ms: f64,
    bit_identical: bool,
    validated: bool,
}

impl Cell {
    /// Whether this cell clears the `--check` gate.
    fn passes(&self) -> bool {
        match &self.outcome {
            Ok(s) => s.bit_identical && s.validated && s.degraded_restarts == 0,
            Err(_) => false,
        }
    }
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 8_000);
    let k = args.f64("k", 6.0);
    let grid = ProcessorGrid::new(args.usize("rows", 2), args.usize("cols", 4));
    let seed = args.u64("seed", 42);
    let group = args.usize("group", 4);
    let fault_seeds = args.u64_list("fault-seeds", &[1, 2, 3, 4, 5]);
    let wires: Vec<WireMode> = args
        .str("wires")
        .unwrap_or("raw,auto")
        .split(',')
        .map(|s| {
            WireMode::parse(s.trim())
                .unwrap_or_else(|| panic!("--wires: {s:?} (expected auto, raw, delta, or bitmap)"))
        })
        .collect();
    let engines = [
        (ComputeEngine::Serial, "serial"),
        (ComputeEngine::Rayon, "rayon"),
    ];
    let out = args
        .str("out")
        .unwrap_or("BENCH_resilience.json")
        .to_string();
    let check = args.bool("check", false);
    let source = 0u64;

    let spec = GraphSpec::poisson(n, k, seed);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);
    let config = BfsConfig::paper_optimized();
    let baseline = bfs2d::run(&graph, &mut world, &config, source);
    println!(
        "chaos sweep: n = {n}, k = {k}, {}x{} grid, parity groups of {group} — \
         fault-free reference: {} levels, {:.3} ms simulated",
        grid.rows(),
        grid.cols(),
        baseline.stats.num_levels(),
        baseline.stats.sim_time * 1e3
    );

    let resilient = ResilientConfig {
        parity_group_size: group,
        ..ResilientConfig::default()
    };
    let mut cells: Vec<Cell> = Vec::new();
    for &fault_seed in &fault_seeds {
        let chaos = ChaosSpec::moderate(fault_seed, grid.len(), group);
        let plan = FaultPlan::chaos(&chaos);
        let deaths = plan.deaths().len();
        for &wire in &wires {
            for (engine, engine_name) in engines {
                let mut w = SimWorld::bluegene(grid)
                    .with_fault_plan(plan.clone())
                    .with_wire_policy(WirePolicy::with_mode(wire));
                let cfg = config.with_engine(engine);
                let outcome = match bfs2d::run_resilient(&graph, &mut w, &cfg, source, &resilient) {
                    Ok(res) => {
                        let f = &res.result.stats.comm.faults;
                        Ok(CellStats {
                            recoveries: res.recoveries,
                            degraded_restarts: res.degraded_restarts,
                            retransmissions: f.retransmissions,
                            drops: f.drops_injected,
                            sim_ms: res.result.stats.sim_time * 1e3,
                            recovery_ms: res.recovery_time * 1e3,
                            bit_identical: res.result.levels == baseline.levels,
                            validated: validate::validate_against_spec(
                                &spec,
                                &res.result.levels,
                                source,
                            )
                            .is_ok(),
                        })
                    }
                    Err(e) => Err(e.to_string()),
                };
                cells.push(Cell {
                    fault_seed,
                    wire,
                    engine: engine_name,
                    deaths,
                    outcome,
                });
            }
        }
    }

    let mut table = Table::new(
        "chaos sweep (differential vs fault-free + Graph500-style validation)",
        &[
            "fseed", "wire", "engine", "deaths", "recov", "degrade", "retrans", "sim ms", "status",
        ],
    );
    for c in &cells {
        let (recov, degrade, retrans, sim_ms, status) = match &c.outcome {
            Ok(s) => (
                s.recoveries.to_string(),
                s.degraded_restarts.to_string(),
                s.retransmissions.to_string(),
                format!("{:.3}", s.sim_ms),
                match (s.bit_identical, s.validated) {
                    (true, true) => "ok".to_string(),
                    (false, _) => "DIVERGED".to_string(),
                    (_, false) => "INVALID".to_string(),
                },
            ),
            Err(e) => (
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("ERR {e}"),
            ),
        };
        table.push(vec![
            c.fault_seed.to_string(),
            c.wire.name().to_string(),
            c.engine.to_string(),
            c.deaths.to_string(),
            recov,
            degrade,
            retrans,
            sim_ms,
            status,
        ]);
    }
    table.emit(args.str("csv"));

    let failures = cells.iter().filter(|c| !c.passes()).count();

    // --- Emit (hand-formatted: the bench crate carries no serde). -----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"graph\": {{");
    let _ = writeln!(json, "    \"n\": {n},");
    let _ = writeln!(json, "    \"degree\": {k},");
    let _ = writeln!(json, "    \"grid\": \"{}x{}\",", grid.rows(), grid.cols());
    let _ = writeln!(json, "    \"seed\": {seed}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"parity_group_size\": {group},");
    let _ = writeln!(
        json,
        "  \"baseline_sim_ms\": {:.3},",
        baseline.stats.sim_time * 1e3
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        match &c.outcome {
            Ok(s) => {
                let _ = writeln!(
                    json,
                    "    {{ \"fault_seed\": {}, \"wire\": \"{}\", \"engine\": \"{}\", \
                     \"deaths\": {}, \"recoveries\": {}, \"degraded_restarts\": {}, \
                     \"retransmissions\": {}, \"drops\": {}, \"sim_ms\": {:.3}, \
                     \"recovery_ms\": {:.3}, \"bit_identical\": {}, \"validated\": {} }}{comma}",
                    c.fault_seed,
                    c.wire.name(),
                    c.engine,
                    c.deaths,
                    s.recoveries,
                    s.degraded_restarts,
                    s.retransmissions,
                    s.drops,
                    s.sim_ms,
                    s.recovery_ms,
                    s.bit_identical,
                    s.validated
                );
            }
            Err(e) => {
                let _ = writeln!(
                    json,
                    "    {{ \"fault_seed\": {}, \"wire\": \"{}\", \"engine\": \"{}\", \
                     \"deaths\": {}, \"error\": \"{}\" }}{comma}",
                    c.fault_seed,
                    c.wire.name(),
                    c.engine,
                    c.deaths,
                    e.replace('"', "'")
                );
            }
        }
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"cells_total\": {},", cells.len());
    let _ = writeln!(json, "  \"failures\": {failures}");
    json.push_str("}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if check {
        if failures > 0 {
            eprintln!(
                "FAIL: {failures} of {} chaos cells died, diverged, failed validation, \
                 or needed a degraded restart",
                cells.len()
            );
            std::process::exit(1);
        }
        println!(
            "check passed: {} cells recovered bit-identically",
            cells.len()
        );
    }
}
