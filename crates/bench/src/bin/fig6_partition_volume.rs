//! Figure 6 — message volume per level, 1D vs 2D partitioning, and the
//! analytic crossover degree.
//!
//! Paper setup: 40 M-vertex graphs on a 20×20 mesh (P = 400), searched
//! to an unreachable target (worst case, full traversal); per-level
//! message volume received by a processor... compared between 1D and 2D
//! partitionings for k = 10 (1D wins), k = 50 (2D wins), and the
//! crossover degree k = 34 computed from
//!
//! ```text
//! n·γ(n/P)·(P−1)/P = 2·(n/P)·γ(n/√P)·(√P−1)
//! ```
//!
//! where both partitionings move near-identical volume.
//!
//! Reproduction: n scaled to 400 000 by default, same P = 400 mesh.
//! The crossover equation depends only on P (n cancels), so the solver
//! reproduces the paper's constant directly — the exact root is ≈ 31.3
//! (the paper rounds to 34; at k = 34 the sides agree within ~5%).
//!
//! Flags: `--n 400000` `--p 400` `--ks 10,50` `--crossover` (adds the
//! computed crossover-k series) `--seed 42` `--csv out.csv`

use bfs_core::{bfs2d, theory, BfsConfig};
use bgl_bench::exp;
use bgl_bench::harness::{Args, Table};
use bgl_comm::ProcessorGrid;
use bgl_graph::GraphSpec;

const HELP: &str = "\
fig6_partition_volume — reproduce paper Figure 6 (1D vs 2D volume per level)
  --n <u64>     vertices (default 400000; paper 40000000)
  --p <usize>   processors (default 400, i.e. a 20x20 mesh / 1x400 line)
  --ks <list>   degrees to compare (default 10,50)
  --crossover   additionally run the computed crossover degree (Fig 6.b)
  --seed <u64>  graph seed (default 42)
  --csv <path>  also write CSV
";

/// Run a full (unreachable-target) traversal and return per-level total
/// received volumes.
fn volumes(n: u64, k: f64, grid: ProcessorGrid, seed: u64) -> Vec<u64> {
    let spec = GraphSpec::poisson(n, k, seed);
    let (graph, mut world) = exp::build(spec, grid);
    // Direct all-to-all fold: the figure compares the volume *induced by
    // the partitioning*, matching the §3.1 analytic model, so ring
    // forwarding must not inflate the counts.
    let r = bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 1);
    r.stats
        .levels
        .iter()
        .map(|l| l.expand_received + l.fold_received)
        .collect()
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 400_000);
    let p = args.usize("p", 400);
    let mut ks: Vec<f64> = args
        .u64_list("ks", &[10, 50])
        .into_iter()
        .map(|k| k as f64)
        .collect();
    let seed = args.u64("seed", 42);

    let crossover = theory::crossover_degree(n as f64, p as f64, 1e4);
    if args.bool("crossover", false) {
        if let Some(kc) = crossover {
            ks.push(kc.round());
        }
    }

    let mesh = ProcessorGrid::square_ish(p);
    let line = ProcessorGrid::one_d(p);

    let mut columns: Vec<String> = vec!["level".into()];
    for &k in &ks {
        columns.push(format!("2D(k={k})"));
        columns.push(format!("1D(k={k})"));
    }
    let colrefs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!(
            "Figure 6 — message volume per level, n={n}, 2D {}x{} vs 1D 1x{p}",
            mesh.rows(),
            mesh.cols()
        ),
        &colrefs,
    );

    let mut series: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
    for &k in &ks {
        eprintln!("  … running k={k} (2D then 1D)");
        let v2 = volumes(n, k, mesh, seed);
        let v1 = volumes(n, k, line, seed);
        series.push((v2, v1));
    }
    let max_levels = series
        .iter()
        .map(|(a, b)| a.len().max(b.len()))
        .max()
        .unwrap_or(0);
    for l in 0..max_levels {
        let mut cells = vec![l.to_string()];
        for (v2, v1) in &series {
            cells.push(v2.get(l).copied().unwrap_or(0).to_string());
            cells.push(v1.get(l).copied().unwrap_or(0).to_string());
        }
        table.push(cells);
    }
    table.emit(args.str("csv"));

    for (i, &k) in ks.iter().enumerate() {
        let (v2, v1) = &series[i];
        let t2: u64 = v2.iter().sum();
        let t1: u64 = v1.iter().sum();
        println!(
            "k={k}: total 2D volume {t2}, total 1D volume {t1} => {} moves less",
            if t2 < t1 { "2D" } else { "1D" }
        );
    }
    if let Some(kc) = crossover {
        println!(
            "\nanalytic crossover degree for P={p}: k = {kc:.1} (paper reports 34 for \
             P=400; the exact root of the paper's own equation is ≈ 31.3 — the \
             equation depends only on P, so it transfers to the scaled n unchanged)."
        );
    }
    println!(
        "paper claims: volume grows more slowly with 1D at low degree, 2D generates \
         less at high degree, and the two are nearly identical at the crossover."
    );
}
