//! Figure 4.b — total message volume per level of the search.
//!
//! Paper setup: a graph with 12 M vertices and 120 M edges (k = 10);
//! total message volume received, plotted against the level ("length of
//! search path"); the volume "increases quickly as the path length
//! increases until the path length reaches the diameter of the graph".
//!
//! Reproduction: same degree, vertex count scaled (default n = 120 000),
//! on a square processor mesh. The per-level fold + expand received
//! volumes are printed; the shape — exponential ramp-up, then a peak
//! near the diameter `ln n / ln k`, then decay as the component
//! exhausts — is the comparison target.
//!
//! Flags: `--n 120000` `--k 10` `--p 256` `--seed 42` `--source 1`
//! `--csv out.csv`

use bfs_core::{bfs2d, theory, BfsConfig};
use bgl_bench::exp;
use bgl_bench::harness::{Args, Table};
use bgl_comm::ProcessorGrid;
use bgl_graph::GraphSpec;

const HELP: &str = "\
fig4b_message_volume — reproduce paper Figure 4.b (volume per level)
  --n <u64>      vertices (default 120000; paper 12000000)
  --k <f64>      average degree (default 10)
  --p <usize>    processors (default 256)
  --seed <u64>   graph seed (default 42)
  --source <u64> search source (default 1)
  --csv <path>   also write CSV
";

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 120_000);
    let k = args.f64("k", 10.0);
    let p = args.usize("p", 256);
    let seed = args.u64("seed", 42);
    let source = args.u64("source", 1).min(n - 1);

    let grid = ProcessorGrid::square_ish(p);
    let spec = GraphSpec::poisson(n, k, seed);
    let (graph, mut world) = exp::build(spec, grid);
    let result = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), source);

    let predicted = theory::expected_frontiers(n as f64, k);
    let mut table = Table::new(
        &format!(
            "Figure 4.b — message volume per level (n={n}, k={k}, grid {}x{})",
            grid.rows(),
            grid.cols()
        ),
        &[
            "level",
            "frontier",
            "predicted_frontier",
            "expand_recv",
            "fold_recv",
            "total_recv",
        ],
    );
    let mut peak_level = 0u32;
    let mut peak = 0u64;
    for l in &result.stats.levels {
        let total = l.expand_received + l.fold_received;
        if total > peak {
            peak = total;
            peak_level = l.level;
        }
        table.push(vec![
            l.level.to_string(),
            l.frontier.to_string(),
            predicted
                .get(l.level as usize)
                .map(|f| format!("{f:.0}"))
                .unwrap_or_else(|| "0".into()),
            l.expand_received.to_string(),
            l.fold_received.to_string(),
            total.to_string(),
        ]);
    }
    table.emit(args.str("csv"));

    let diam = theory::diameter_estimate(n as f64, k);
    println!(
        "\npeak volume {peak} vertices at level {peak_level}; random-graph diameter \
         estimate ln n / ln k = {diam:.1}."
    );
    println!(
        "paper claim: volume rises quickly with level until the path length reaches \
         the graph diameter, then stays bounded/declines."
    );
}
