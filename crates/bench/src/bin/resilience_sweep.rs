//! Resilience sweep — BFS under injected faults, drop rate × dead ranks.
//!
//! The robustness extension's headline experiment: the same search is
//! run fault-free and then under a grid of deterministic
//! [`FaultPlan`]s — message drop probabilities crossed with scheduled
//! rank deaths — through the checkpoint/recover engine
//! ([`bfs_core::bfs2d::run_resilient`]). Every faulty run is checked
//! bit-identical to the fault-free levels, then the table reports what
//! the faults cost:
//!
//! * **slowdown** — simulated time relative to the fault-free run
//!   (retransmissions, backoff, rollback + replayed levels);
//! * **retransmissions / drops** — protocol work injected by the plan;
//! * **recoveries / recovery time** — rank deaths survived and the
//!   simulated time spent inside recovery itself.
//!
//! Flags: `--n 20000` `--k 6` `--rows 4` `--cols 4`
//! `--drops 0,5,10,20` (percent) `--deaths 0,1,2` `--seed 42`
//! `--fault-seed 7` `--csv out.csv`

use bfs_core::{bfs2d, BfsConfig, ResilientConfig};
use bgl_bench::exp;
use bgl_bench::harness::{Args, Table};
use bgl_comm::{FaultPlan, ProcessorGrid, SimWorld};
use bgl_graph::GraphSpec;

const HELP: &str = "\
resilience_sweep — BFS slowdown under injected faults (drop rate x dead ranks)
  --n <u64>        vertices (default 20000)
  --k <f64>        average degree (default 6)
  --rows <usize>   grid rows (default 4)
  --cols <usize>   grid cols (default 4)
  --drops <list>   message drop probabilities in percent (default 0,5,10,20)
  --deaths <list>  scheduled rank-death counts (default 0,1,2)
  --seed <u64>     graph seed (default 42)
  --fault-seed <u64>  fault schedule seed (default 7)
  --csv <path>     also write CSV
";

/// A fault plan with `deaths` rank deaths spread over ranks and rounds,
/// on top of a uniform drop probability.
fn plan_for(fault_seed: u64, drop_pct: u64, deaths: u64, p: usize) -> FaultPlan {
    let mut plan = FaultPlan::seeded(fault_seed).with_drop_prob(drop_pct as f64 / 100.0);
    for i in 0..deaths {
        // Distinct victims, staggered rounds: deaths hit different
        // levels of the search.
        let victim = ((i * 2 + 1) * p as u64 / (deaths * 2)) as usize % p;
        plan = plan.kill_rank_at(victim, 2 + 3 * i);
    }
    plan
}

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 20_000);
    let k = args.f64("k", 6.0);
    let grid = ProcessorGrid::new(args.usize("rows", 4), args.usize("cols", 4));
    let drops = args.u64_list("drops", &[0, 5, 10, 20]);
    let deaths = args.u64_list("deaths", &[0, 1, 2]);
    let seed = args.u64("seed", 42);
    let fault_seed = args.u64("fault-seed", 7);
    let source = 1u64.min(n - 1);

    let spec = GraphSpec::poisson(n, k, seed);
    let (graph, mut world) = exp::build(spec, grid);
    let config = BfsConfig::paper_optimized();
    let baseline = bfs2d::run(&graph, &mut world, &config, source);
    println!(
        "baseline: n = {n}, k = {k}, {}x{} grid — {:.3} ms simulated, {} levels\n",
        grid.rows(),
        grid.cols(),
        baseline.stats.sim_time * 1e3,
        baseline.stats.num_levels()
    );

    let mut table = Table::new(
        "resilience sweep (every cell verified bit-identical to the fault-free levels)",
        &[
            "drop%",
            "deaths",
            "sim ms",
            "slowdown",
            "retrans",
            "drops",
            "recoveries",
            "recovery ms",
        ],
    );

    for &drop_pct in &drops {
        for &death_count in &deaths {
            let plan = plan_for(fault_seed, drop_pct, death_count, grid.len());
            let mut w = SimWorld::bluegene(grid).with_fault_plan(plan);
            let got =
                bfs2d::run_resilient(&graph, &mut w, &config, source, &ResilientConfig::default())
                    .expect("sweep cell must recover");
            assert_eq!(
                got.result.levels, baseline.levels,
                "faulty run must be bit-identical (drop {drop_pct}%, deaths {death_count})"
            );
            let f = &got.result.stats.comm.faults;
            table.push(vec![
                drop_pct.to_string(),
                death_count.to_string(),
                format!("{:.3}", got.result.stats.sim_time * 1e3),
                format!(
                    "{:.2}x",
                    got.result.stats.sim_time / baseline.stats.sim_time
                ),
                f.retransmissions.to_string(),
                f.drops_injected.to_string(),
                got.recoveries.to_string(),
                format!("{:.3}", got.recovery_time * 1e3),
            ]);
        }
    }

    table.emit(args.str("csv"));
}
