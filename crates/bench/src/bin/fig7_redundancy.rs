//! Figure 7 — redundancy ratio of the union-fold operation.
//!
//! Paper setup: weak scaling on BlueGene/L with the two-phase union-fold
//! (§3.2.2); metric is the **redundancy ratio** — duplicate vertices
//! eliminated by the union against the total vertices a processor would
//! have received. Findings: up to ~80% of vertices are saved for the
//! k = 100 graph, the high-degree graph saves more than the low-degree
//! one, and the ratio *declines* as P grows (ring communication makes
//! each processor receive more forwarded copies while the duplicate
//! population stays roughly constant).
//!
//! Reproduction: same two weak-scaling series at 1/10 per-rank scale,
//! union-fold via the two-phase grouped ring.
//!
//! Flags: `--ps 16,64,144` `--scale 10` `--seed 42` `--csv out.csv`
//!
//! The per-rank scale matters for this figure: at very small per-rank
//! sizes (scale ≥ 20) the k = 100 series is dominated by a few
//! heavily-shared vertices and the declining trend washes out, so the
//! default scale is 10 (per-rank |V| = 10000 / 1000); P is capped at 144
//! to keep the default run's memory modest (n = 1.44M at k = 10).

use bfs_core::{bfs2d, BfsConfig, FoldStrategy};
use bgl_bench::exp;
use bgl_bench::harness::{Args, Table};
use bgl_comm::ProcessorGrid;
use bgl_graph::GraphSpec;

const HELP: &str = "\
fig7_redundancy — reproduce paper Figure 7 (union-fold redundancy ratio)
  --ps <list>    processor counts (default 16,64,144)
  --scale <u64>  divisor on the paper's per-rank |V| (default 10)
  --seed <u64>   graph seed (default 42)
  --csv <path>   also write CSV
";

const SERIES: [(u64, f64); 2] = [(100_000, 10.0), (10_000, 100.0)];

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let ps = args.u64_list("ps", &[16, 64, 144]);
    let scale = args.u64("scale", 10).max(1);
    let seed = args.u64("seed", 42);

    let headers: Vec<String> = SERIES
        .iter()
        .map(|&(v, k)| format!("ratio%(|V|={},k={})", (v / scale).max(1), k))
        .collect();
    let columns = vec!["P", "grid", headers[0].as_str(), headers[1].as_str()];
    let mut table = Table::new("Figure 7 — union-fold redundancy ratio (percent)", &columns);

    let config = BfsConfig {
        fold: FoldStrategy::TwoPhaseRing,
        ..BfsConfig::paper_optimized()
    };

    let mut per_series: Vec<Vec<f64>> = vec![Vec::new(); SERIES.len()];
    for &p in &ps {
        let grid = ProcessorGrid::square_ish(p as usize);
        let mut cells = vec![p.to_string(), format!("{}x{}", grid.rows(), grid.cols())];
        for (i, &(v_full, k)) in SERIES.iter().enumerate() {
            let per_rank = (v_full / scale).max(1);
            let n = per_rank * p;
            let spec = GraphSpec::poisson(n, k.min(n as f64 - 1.0), seed + i as u64);
            let (graph, mut world) = exp::build(spec, grid);
            let r = bfs2d::run(&graph, &mut world, &config, 1);
            let ratio = r.stats.redundancy_ratio_percent();
            per_series[i].push(ratio);
            cells.push(format!("{ratio:.1}"));
        }
        table.push(cells);
        eprintln!("  … P={p} done");
    }
    table.emit(args.str("csv"));

    for (i, &(v_full, k)) in SERIES.iter().enumerate() {
        let s = &per_series[i];
        if s.len() >= 2 {
            println!(
                "series (|V|={},k={k}): ratio {:.1}% -> {:.1}% as P grows ({})",
                v_full / scale,
                s[0],
                s[s.len() - 1],
                if s[s.len() - 1] < s[0] {
                    "declining, as the paper reports"
                } else {
                    "NOT declining — deviation from the paper"
                }
            );
        }
    }
    println!(
        "paper claims: higher-degree graphs save more (up to ~80%), and the ratio \
         declines with P because ring forwarding multiplies receptions."
    );
}
