//! Figure 5 — strong scaling of the distributed BFS.
//!
//! Paper setup: graph size fixed while P grows to ~512; "the speedup
//! curves grow in proportion to √P for small P. For larger P, the
//! speedup tapers off as the local problem size becomes very small and
//! the communication overhead becomes dominant."
//!
//! Reproduction: fixed n (default 100 000), P ∈ {1..512}, speedup
//! computed from simulated time against the P = 1 run of the same
//! graph. A √P reference column is printed for comparison, and the
//! taper is visible as speedup/√P collapsing at large P.
//!
//! Flags: `--n 100000` `--ks 10,100` `--ps 1,4,16,64,144,256,400,512`
//! `--sources 2` `--seed 42` `--csv out.csv`

use bfs_core::BfsConfig;
use bgl_bench::exp;
use bgl_bench::harness::{Args, Table};
use bgl_comm::ProcessorGrid;
use bgl_graph::GraphSpec;

const HELP: &str = "\
fig5_strong_scaling — reproduce paper Figure 5 (strong scaling speedup)
  --n <u64>      vertices, fixed across P (default 100000)
  --ks <list>    average degrees (default 10,100)
  --ps <list>    processor counts (default 1,4,16,64,144,256,400,512)
  --sources <n>  searches averaged (default 2)
  --seed <u64>   graph seed (default 42)
  --csv <path>   also write CSV
";

fn main() {
    let args = Args::parse();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let n = args.u64("n", 100_000);
    let ks = args.u64_list("ks", &[10, 100]);
    let ps = args.u64_list("ps", &[1, 4, 16, 64, 144, 256, 400, 512]);
    let n_sources = args.usize("sources", 2);
    let seed = args.u64("seed", 42);

    let mut columns: Vec<String> = vec!["P".into(), "sqrt(P)".into()];
    for &k in &ks {
        columns.push(format!("speedup(k={k})"));
        columns.push(format!("time(k={k})"));
    }
    let colrefs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("Figure 5 — strong scaling speedup, n={n} fixed"),
        &colrefs,
    );

    // Baseline (P = 1) per degree.
    let mut base: Vec<f64> = Vec::new();
    for (i, &k) in ks.iter().enumerate() {
        let spec = GraphSpec::poisson(n, k as f64, seed + i as u64);
        let grid = ProcessorGrid::new(1, 1);
        let (graph, mut world) = exp::build(spec, grid);
        let m = exp::mean_search(
            &graph,
            &mut world,
            &BfsConfig::paper_optimized(),
            &exp::sources(n, n_sources),
        );
        base.push(m.exec);
    }

    for &p in &ps {
        let grid = ProcessorGrid::square_ish(p as usize);
        let mut cells = vec![p.to_string(), format!("{:.1}", (p as f64).sqrt())];
        for (i, &k) in ks.iter().enumerate() {
            let spec = GraphSpec::poisson(n, k as f64, seed + i as u64);
            let (graph, mut world) = exp::build(spec, grid);
            let m = exp::mean_search(
                &graph,
                &mut world,
                &BfsConfig::paper_optimized(),
                &exp::sources(n, n_sources),
            );
            cells.push(format!("{:.1}", base[i] / m.exec));
            cells.push(format!("{:.2}ms", m.exec * 1e3));
        }
        table.push(cells);
        eprintln!("  … P={p} done");
    }
    table.emit(args.str("csv"));
    println!(
        "\npaper claim: speedup grows ∝ √P for small P, then tapers as per-rank work \
         shrinks and communication dominates."
    );
}
