//! # bgl-bench — experiment harness
//!
//! Shared plumbing for the binaries that regenerate every table and
//! figure of the paper's evaluation section (see `src/bin/`) and for the
//! Criterion micro-benchmarks (see `benches/`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exp;
pub mod harness;

pub use harness::{Args, Row, Table};
