//! Tiny shared harness: flag parsing, table rendering, CSV output.
//!
//! The experiment binaries take `--key value` flags (documented per
//! binary with `--help`), print a human-readable table mirroring the
//! paper's rows/series, and optionally write `--csv <path>`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed command-line flags: `--key value` pairs plus `--help`.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: BTreeMap<String, String>,
    help: bool,
}

impl Args {
    /// Parse from `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (tests).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut flags = BTreeMap::new();
        let mut help = false;
        let mut it = iter.into_iter().peekable();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                help = true;
                continue;
            }
            if let Some(key) = arg.strip_prefix("--") {
                if let Some(eq) = key.find('=') {
                    flags.insert(key[..eq].to_string(), key[eq + 1..].to_string());
                } else if it.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    flags.insert(key.to_string(), it.next().unwrap());
                } else {
                    flags.insert(key.to_string(), String::from("true"));
                }
            } else {
                eprintln!("warning: ignoring positional argument {arg:?}");
            }
        }
        Self { flags, help }
    }

    /// Whether `--help` was requested.
    pub fn wants_help(&self) -> bool {
        self.help
    }

    /// A u64 flag with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A usize flag with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.u64(key, default as u64) as usize
    }

    /// An f64 flag with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A boolean flag (present, `=true`, or `=false`).
    pub fn bool(&self, key: &str, default: bool) -> bool {
        self.flags
            .get(key)
            .map(|v| v == "true" || v == "1" || v.is_empty())
            .unwrap_or(default)
    }

    /// A string flag.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Comma-separated u64 list flag with default.
    pub fn u64_list(&self, key: &str, default: &[u64]) -> Vec<u64> {
        match self.flags.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects integers, got {s:?}"))
                })
                .collect(),
        }
    }
}

/// One row of an output table: label plus cell values.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row cells, formatted.
    pub cells: Vec<String>,
}

/// A printable/exportable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of already-formatted cells.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(Row { cells });
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(&row.cells) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(&row.cells, &widths));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.cells.join(","));
        }
        out
    }

    /// Print to stdout and, if `csv_path` is set, write the CSV file.
    pub fn emit(&self, csv_path: Option<&str>) {
        print!("{}", self.render());
        if let Some(path) = csv_path {
            std::fs::write(path, self.to_csv()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("(csv written to {path})");
        }
    }
}

/// Format seconds for display (ms below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else {
        format!("{:.3}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_flags() {
        let a = args("--n 1000 --k=12.5 --csv out.csv --verbose");
        assert_eq!(a.u64("n", 0), 1000);
        assert!((a.f64("k", 0.0) - 12.5).abs() < 1e-12);
        assert_eq!(a.str("csv"), Some("out.csv"));
        assert!(a.bool("verbose", false));
        assert!(!a.wants_help());
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.u64("n", 7), 7);
        assert!(!a.bool("x", false));
        assert!(a.bool("x", true));
        assert_eq!(a.u64_list("ps", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn list_flag() {
        let a = args("--ps 1,4,16,64");
        assert_eq!(a.u64_list("ps", &[]), vec![1, 4, 16, 64]);
    }

    #[test]
    fn help_flag() {
        assert!(args("--help").wants_help());
        assert!(args("-h").wants_help());
    }

    #[test]
    fn table_render_and_csv() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("333"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "a,bb");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn fmt_secs_scales() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
    }
}
