/root/repo/target/debug/deps/bgl_graph-472cc0e948f3b863.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_graph-472cc0e948f3b863.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/dist.rs:
crates/graph/src/gen.rs:
crates/graph/src/partition.rs:
crates/graph/src/spec.rs:
crates/graph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
