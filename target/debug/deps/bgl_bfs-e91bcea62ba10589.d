/root/repo/target/debug/deps/bgl_bfs-e91bcea62ba10589.d: src/bin/cli.rs

/root/repo/target/debug/deps/bgl_bfs-e91bcea62ba10589: src/bin/cli.rs

src/bin/cli.rs:
