/root/repo/target/debug/deps/bgl_graph-c856eb4597d18688.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libbgl_graph-c856eb4597d18688.rlib: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libbgl_graph-c856eb4597d18688.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/dist.rs:
crates/graph/src/gen.rs:
crates/graph/src/partition.rs:
crates/graph/src/spec.rs:
crates/graph/src/stats.rs:
