/root/repo/target/debug/deps/engine_equivalence-f16f3c8bfc9a1f95.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-f16f3c8bfc9a1f95: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
