/root/repo/target/debug/deps/bgl_bfs-574ee790ca753b48.d: src/bin/cli.rs

/root/repo/target/debug/deps/bgl_bfs-574ee790ca753b48: src/bin/cli.rs

src/bin/cli.rs:
