/root/repo/target/debug/deps/table1_topologies-ad58c0e3c325230d.d: crates/bench/src/bin/table1_topologies.rs

/root/repo/target/debug/deps/table1_topologies-ad58c0e3c325230d: crates/bench/src/bin/table1_topologies.rs

crates/bench/src/bin/table1_topologies.rs:
