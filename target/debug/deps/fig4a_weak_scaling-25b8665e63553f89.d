/root/repo/target/debug/deps/fig4a_weak_scaling-25b8665e63553f89.d: crates/bench/src/bin/fig4a_weak_scaling.rs

/root/repo/target/debug/deps/fig4a_weak_scaling-25b8665e63553f89: crates/bench/src/bin/fig4a_weak_scaling.rs

crates/bench/src/bin/fig4a_weak_scaling.rs:
