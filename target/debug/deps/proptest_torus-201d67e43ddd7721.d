/root/repo/target/debug/deps/proptest_torus-201d67e43ddd7721.d: crates/torus/tests/proptest_torus.rs

/root/repo/target/debug/deps/proptest_torus-201d67e43ddd7721: crates/torus/tests/proptest_torus.rs

crates/torus/tests/proptest_torus.rs:
