/root/repo/target/debug/deps/determinism-4059e33ea82eb01f.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-4059e33ea82eb01f.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
