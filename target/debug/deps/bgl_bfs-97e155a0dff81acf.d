/root/repo/target/debug/deps/bgl_bfs-97e155a0dff81acf.d: src/lib.rs

/root/repo/target/debug/deps/libbgl_bfs-97e155a0dff81acf.rlib: src/lib.rs

/root/repo/target/debug/deps/libbgl_bfs-97e155a0dff81acf.rmeta: src/lib.rs

src/lib.rs:
