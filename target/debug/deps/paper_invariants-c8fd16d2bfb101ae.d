/root/repo/target/debug/deps/paper_invariants-c8fd16d2bfb101ae.d: tests/paper_invariants.rs

/root/repo/target/debug/deps/paper_invariants-c8fd16d2bfb101ae: tests/paper_invariants.rs

tests/paper_invariants.rs:
