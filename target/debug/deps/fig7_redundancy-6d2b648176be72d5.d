/root/repo/target/debug/deps/fig7_redundancy-6d2b648176be72d5.d: crates/bench/src/bin/fig7_redundancy.rs

/root/repo/target/debug/deps/fig7_redundancy-6d2b648176be72d5: crates/bench/src/bin/fig7_redundancy.rs

crates/bench/src/bin/fig7_redundancy.rs:
