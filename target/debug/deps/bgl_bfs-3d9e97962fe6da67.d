/root/repo/target/debug/deps/bgl_bfs-3d9e97962fe6da67.d: src/lib.rs

/root/repo/target/debug/deps/bgl_bfs-3d9e97962fe6da67: src/lib.rs

src/lib.rs:
