/root/repo/target/debug/deps/bgl_comm-20ff256c59482319.d: crates/comm/src/lib.rs crates/comm/src/buffer.rs crates/comm/src/collectives/mod.rs crates/comm/src/collectives/allgather.rs crates/comm/src/collectives/alltoall.rs crates/comm/src/collectives/reduce_scatter.rs crates/comm/src/collectives/two_phase.rs crates/comm/src/error.rs crates/comm/src/setops.rs crates/comm/src/sim.rs crates/comm/src/stats.rs crates/comm/src/threaded.rs crates/comm/src/topology.rs crates/comm/src/vset.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_comm-20ff256c59482319.rmeta: crates/comm/src/lib.rs crates/comm/src/buffer.rs crates/comm/src/collectives/mod.rs crates/comm/src/collectives/allgather.rs crates/comm/src/collectives/alltoall.rs crates/comm/src/collectives/reduce_scatter.rs crates/comm/src/collectives/two_phase.rs crates/comm/src/error.rs crates/comm/src/setops.rs crates/comm/src/sim.rs crates/comm/src/stats.rs crates/comm/src/threaded.rs crates/comm/src/topology.rs crates/comm/src/vset.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/buffer.rs:
crates/comm/src/collectives/mod.rs:
crates/comm/src/collectives/allgather.rs:
crates/comm/src/collectives/alltoall.rs:
crates/comm/src/collectives/reduce_scatter.rs:
crates/comm/src/collectives/two_phase.rs:
crates/comm/src/error.rs:
crates/comm/src/setops.rs:
crates/comm/src/sim.rs:
crates/comm/src/stats.rs:
crates/comm/src/threaded.rs:
crates/comm/src/topology.rs:
crates/comm/src/vset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
