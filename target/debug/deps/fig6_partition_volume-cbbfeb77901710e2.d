/root/repo/target/debug/deps/fig6_partition_volume-cbbfeb77901710e2.d: crates/bench/src/bin/fig6_partition_volume.rs

/root/repo/target/debug/deps/fig6_partition_volume-cbbfeb77901710e2: crates/bench/src/bin/fig6_partition_volume.rs

crates/bench/src/bin/fig6_partition_volume.rs:
