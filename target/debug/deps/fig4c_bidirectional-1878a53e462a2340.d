/root/repo/target/debug/deps/fig4c_bidirectional-1878a53e462a2340.d: crates/bench/src/bin/fig4c_bidirectional.rs

/root/repo/target/debug/deps/fig4c_bidirectional-1878a53e462a2340: crates/bench/src/bin/fig4c_bidirectional.rs

crates/bench/src/bin/fig4c_bidirectional.rs:
