/root/repo/target/debug/deps/determinism-902c6cdb2f67ebaf.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-902c6cdb2f67ebaf.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
