/root/repo/target/debug/deps/resilience_sweep-1c3f0dbd94f9e7fc.d: crates/bench/src/bin/resilience_sweep.rs

/root/repo/target/debug/deps/resilience_sweep-1c3f0dbd94f9e7fc: crates/bench/src/bin/resilience_sweep.rs

crates/bench/src/bin/resilience_sweep.rs:
