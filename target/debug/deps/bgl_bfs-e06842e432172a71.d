/root/repo/target/debug/deps/bgl_bfs-e06842e432172a71.d: src/bin/cli.rs

/root/repo/target/debug/deps/bgl_bfs-e06842e432172a71: src/bin/cli.rs

src/bin/cli.rs:
