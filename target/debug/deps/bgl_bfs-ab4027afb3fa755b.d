/root/repo/target/debug/deps/bgl_bfs-ab4027afb3fa755b.d: src/bin/cli.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_bfs-ab4027afb3fa755b.rmeta: src/bin/cli.rs Cargo.toml

src/bin/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
