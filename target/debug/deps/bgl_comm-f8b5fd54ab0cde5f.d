/root/repo/target/debug/deps/bgl_comm-f8b5fd54ab0cde5f.d: crates/comm/src/lib.rs crates/comm/src/buffer.rs crates/comm/src/collectives/mod.rs crates/comm/src/collectives/allgather.rs crates/comm/src/collectives/alltoall.rs crates/comm/src/collectives/reduce_scatter.rs crates/comm/src/collectives/two_phase.rs crates/comm/src/error.rs crates/comm/src/setops.rs crates/comm/src/sim.rs crates/comm/src/stats.rs crates/comm/src/threaded.rs crates/comm/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_comm-f8b5fd54ab0cde5f.rmeta: crates/comm/src/lib.rs crates/comm/src/buffer.rs crates/comm/src/collectives/mod.rs crates/comm/src/collectives/allgather.rs crates/comm/src/collectives/alltoall.rs crates/comm/src/collectives/reduce_scatter.rs crates/comm/src/collectives/two_phase.rs crates/comm/src/error.rs crates/comm/src/setops.rs crates/comm/src/sim.rs crates/comm/src/stats.rs crates/comm/src/threaded.rs crates/comm/src/topology.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/buffer.rs:
crates/comm/src/collectives/mod.rs:
crates/comm/src/collectives/allgather.rs:
crates/comm/src/collectives/alltoall.rs:
crates/comm/src/collectives/reduce_scatter.rs:
crates/comm/src/collectives/two_phase.rs:
crates/comm/src/error.rs:
crates/comm/src/setops.rs:
crates/comm/src/sim.rs:
crates/comm/src/stats.rs:
crates/comm/src/threaded.rs:
crates/comm/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
