/root/repo/target/debug/deps/proptest_graph-32a61e3f9ed21ae8.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/proptest_graph-32a61e3f9ed21ae8: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
