/root/repo/target/debug/deps/fig4b_message_volume-8ee29cb80c4b53b7.d: crates/bench/src/bin/fig4b_message_volume.rs

/root/repo/target/debug/deps/fig4b_message_volume-8ee29cb80c4b53b7: crates/bench/src/bin/fig4b_message_volume.rs

crates/bench/src/bin/fig4b_message_volume.rs:
