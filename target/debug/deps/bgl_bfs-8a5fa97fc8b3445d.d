/root/repo/target/debug/deps/bgl_bfs-8a5fa97fc8b3445d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_bfs-8a5fa97fc8b3445d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
