/root/repo/target/debug/deps/bgl_torus-149ceeb34d1cbf9d.d: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/debug/deps/libbgl_torus-149ceeb34d1cbf9d.rlib: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/debug/deps/libbgl_torus-149ceeb34d1cbf9d.rmeta: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

crates/torus/src/lib.rs:
crates/torus/src/coord.rs:
crates/torus/src/cost.rs:
crates/torus/src/fault.rs:
crates/torus/src/machine.rs:
crates/torus/src/mapping.rs:
crates/torus/src/routing.rs:
