/root/repo/target/debug/deps/fig4a_weak_scaling-bce2ee27c6a93c0b.d: crates/bench/src/bin/fig4a_weak_scaling.rs

/root/repo/target/debug/deps/fig4a_weak_scaling-bce2ee27c6a93c0b: crates/bench/src/bin/fig4a_weak_scaling.rs

crates/bench/src/bin/fig4a_weak_scaling.rs:
