/root/repo/target/debug/deps/bgl_graph-234d9b0a2b237bd7.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/bgl_graph-234d9b0a2b237bd7: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/dist.rs:
crates/graph/src/gen.rs:
crates/graph/src/partition.rs:
crates/graph/src/spec.rs:
crates/graph/src/stats.rs:
