/root/repo/target/debug/deps/fig5_strong_scaling-404ba6c8676e9b3e.d: crates/bench/src/bin/fig5_strong_scaling.rs

/root/repo/target/debug/deps/fig5_strong_scaling-404ba6c8676e9b3e: crates/bench/src/bin/fig5_strong_scaling.rs

crates/bench/src/bin/fig5_strong_scaling.rs:
