/root/repo/target/debug/deps/paper_invariants-4fc71f73650cbeab.d: tests/paper_invariants.rs

/root/repo/target/debug/deps/paper_invariants-4fc71f73650cbeab: tests/paper_invariants.rs

tests/paper_invariants.rs:
