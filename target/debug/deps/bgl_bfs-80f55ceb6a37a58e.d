/root/repo/target/debug/deps/bgl_bfs-80f55ceb6a37a58e.d: src/bin/cli.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_bfs-80f55ceb6a37a58e.rmeta: src/bin/cli.rs Cargo.toml

src/bin/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
