/root/repo/target/debug/deps/bgl_bfs-db4529d15092de02.d: src/bin/cli.rs

/root/repo/target/debug/deps/bgl_bfs-db4529d15092de02: src/bin/cli.rs

src/bin/cli.rs:
