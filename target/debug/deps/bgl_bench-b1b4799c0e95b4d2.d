/root/repo/target/debug/deps/bgl_bench-b1b4799c0e95b4d2.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/bgl_bench-b1b4799c0e95b4d2: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
