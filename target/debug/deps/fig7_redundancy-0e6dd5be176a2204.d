/root/repo/target/debug/deps/fig7_redundancy-0e6dd5be176a2204.d: crates/bench/src/bin/fig7_redundancy.rs

/root/repo/target/debug/deps/fig7_redundancy-0e6dd5be176a2204: crates/bench/src/bin/fig7_redundancy.rs

crates/bench/src/bin/fig7_redundancy.rs:
