/root/repo/target/debug/deps/resilience_sweep-6ea4952721c40a14.d: crates/bench/src/bin/resilience_sweep.rs

/root/repo/target/debug/deps/resilience_sweep-6ea4952721c40a14: crates/bench/src/bin/resilience_sweep.rs

crates/bench/src/bin/resilience_sweep.rs:
