/root/repo/target/debug/deps/bgl_torus-1ad8ec025b6c9239.d: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/debug/deps/bgl_torus-1ad8ec025b6c9239: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

crates/torus/src/lib.rs:
crates/torus/src/coord.rs:
crates/torus/src/cost.rs:
crates/torus/src/fault.rs:
crates/torus/src/machine.rs:
crates/torus/src/mapping.rs:
crates/torus/src/routing.rs:
