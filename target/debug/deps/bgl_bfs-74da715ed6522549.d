/root/repo/target/debug/deps/bgl_bfs-74da715ed6522549.d: src/lib.rs

/root/repo/target/debug/deps/bgl_bfs-74da715ed6522549: src/lib.rs

src/lib.rs:
