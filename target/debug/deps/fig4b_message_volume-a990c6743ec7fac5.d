/root/repo/target/debug/deps/fig4b_message_volume-a990c6743ec7fac5.d: crates/bench/src/bin/fig4b_message_volume.rs

/root/repo/target/debug/deps/fig4b_message_volume-a990c6743ec7fac5: crates/bench/src/bin/fig4b_message_volume.rs

crates/bench/src/bin/fig4b_message_volume.rs:
