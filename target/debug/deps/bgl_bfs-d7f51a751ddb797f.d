/root/repo/target/debug/deps/bgl_bfs-d7f51a751ddb797f.d: src/bin/cli.rs

/root/repo/target/debug/deps/bgl_bfs-d7f51a751ddb797f: src/bin/cli.rs

src/bin/cli.rs:
