/root/repo/target/debug/deps/bgl_bfs-68731f20592ada26.d: src/bin/cli.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_bfs-68731f20592ada26.rmeta: src/bin/cli.rs Cargo.toml

src/bin/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
