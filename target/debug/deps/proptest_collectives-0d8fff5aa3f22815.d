/root/repo/target/debug/deps/proptest_collectives-0d8fff5aa3f22815.d: crates/comm/tests/proptest_collectives.rs

/root/repo/target/debug/deps/proptest_collectives-0d8fff5aa3f22815: crates/comm/tests/proptest_collectives.rs

crates/comm/tests/proptest_collectives.rs:
