/root/repo/target/debug/deps/bgl_bench-1690f81876501975.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libbgl_bench-1690f81876501975.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libbgl_bench-1690f81876501975.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
