/root/repo/target/debug/deps/bgl_bfs-dc14e88cd65779bd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_bfs-dc14e88cd65779bd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
