/root/repo/target/debug/deps/bench_setops-f2d8697899b16e04.d: crates/bench/src/bin/bench_setops.rs

/root/repo/target/debug/deps/bench_setops-f2d8697899b16e04: crates/bench/src/bin/bench_setops.rs

crates/bench/src/bin/bench_setops.rs:
