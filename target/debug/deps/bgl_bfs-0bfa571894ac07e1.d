/root/repo/target/debug/deps/bgl_bfs-0bfa571894ac07e1.d: src/lib.rs

/root/repo/target/debug/deps/libbgl_bfs-0bfa571894ac07e1.rlib: src/lib.rs

/root/repo/target/debug/deps/libbgl_bfs-0bfa571894ac07e1.rmeta: src/lib.rs

src/lib.rs:
