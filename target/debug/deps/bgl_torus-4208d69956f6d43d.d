/root/repo/target/debug/deps/bgl_torus-4208d69956f6d43d.d: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/debug/deps/libbgl_torus-4208d69956f6d43d.rlib: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/debug/deps/libbgl_torus-4208d69956f6d43d.rmeta: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

crates/torus/src/lib.rs:
crates/torus/src/coord.rs:
crates/torus/src/cost.rs:
crates/torus/src/fault.rs:
crates/torus/src/machine.rs:
crates/torus/src/mapping.rs:
crates/torus/src/routing.rs:
