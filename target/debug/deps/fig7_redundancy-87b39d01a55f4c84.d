/root/repo/target/debug/deps/fig7_redundancy-87b39d01a55f4c84.d: crates/bench/src/bin/fig7_redundancy.rs

/root/repo/target/debug/deps/fig7_redundancy-87b39d01a55f4c84: crates/bench/src/bin/fig7_redundancy.rs

crates/bench/src/bin/fig7_redundancy.rs:
