/root/repo/target/debug/deps/resilience_sweep-62de10dba8bcb7aa.d: crates/bench/src/bin/resilience_sweep.rs

/root/repo/target/debug/deps/resilience_sweep-62de10dba8bcb7aa: crates/bench/src/bin/resilience_sweep.rs

crates/bench/src/bin/resilience_sweep.rs:
