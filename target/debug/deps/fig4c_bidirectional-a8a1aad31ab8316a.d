/root/repo/target/debug/deps/fig4c_bidirectional-a8a1aad31ab8316a.d: crates/bench/src/bin/fig4c_bidirectional.rs

/root/repo/target/debug/deps/fig4c_bidirectional-a8a1aad31ab8316a: crates/bench/src/bin/fig4c_bidirectional.rs

crates/bench/src/bin/fig4c_bidirectional.rs:
