/root/repo/target/debug/deps/bgl_bench-4c3037094e5e2054.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libbgl_bench-4c3037094e5e2054.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libbgl_bench-4c3037094e5e2054.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
