/root/repo/target/debug/deps/fig6_partition_volume-87d21a9537f77463.d: crates/bench/src/bin/fig6_partition_volume.rs

/root/repo/target/debug/deps/fig6_partition_volume-87d21a9537f77463: crates/bench/src/bin/fig6_partition_volume.rs

crates/bench/src/bin/fig6_partition_volume.rs:
