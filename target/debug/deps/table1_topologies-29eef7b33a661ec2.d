/root/repo/target/debug/deps/table1_topologies-29eef7b33a661ec2.d: crates/bench/src/bin/table1_topologies.rs

/root/repo/target/debug/deps/table1_topologies-29eef7b33a661ec2: crates/bench/src/bin/table1_topologies.rs

crates/bench/src/bin/table1_topologies.rs:
