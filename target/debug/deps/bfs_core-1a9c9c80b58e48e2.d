/root/repo/target/debug/deps/bfs_core-1a9c9c80b58e48e2.d: crates/core/src/lib.rs crates/core/src/bfs1d.rs crates/core/src/bfs2d.rs crates/core/src/bidir.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/memory.rs crates/core/src/path.rs crates/core/src/reference.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/theory.rs crates/core/src/threaded_run.rs crates/core/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libbfs_core-1a9c9c80b58e48e2.rmeta: crates/core/src/lib.rs crates/core/src/bfs1d.rs crates/core/src/bfs2d.rs crates/core/src/bidir.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/memory.rs crates/core/src/path.rs crates/core/src/reference.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/theory.rs crates/core/src/threaded_run.rs crates/core/src/tree.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bfs1d.rs:
crates/core/src/bfs2d.rs:
crates/core/src/bidir.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/memory.rs:
crates/core/src/path.rs:
crates/core/src/reference.rs:
crates/core/src/state.rs:
crates/core/src/stats.rs:
crates/core/src/theory.rs:
crates/core/src/threaded_run.rs:
crates/core/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
