/root/repo/target/debug/deps/bgl_graph-247778e1c944d62f.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libbgl_graph-247778e1c944d62f.rlib: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libbgl_graph-247778e1c944d62f.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/dist.rs:
crates/graph/src/gen.rs:
crates/graph/src/partition.rs:
crates/graph/src/spec.rs:
crates/graph/src/stats.rs:
