/root/repo/target/debug/deps/oracle_equivalence-5f7a570fcf9984f2.d: tests/oracle_equivalence.rs

/root/repo/target/debug/deps/oracle_equivalence-5f7a570fcf9984f2: tests/oracle_equivalence.rs

tests/oracle_equivalence.rs:
