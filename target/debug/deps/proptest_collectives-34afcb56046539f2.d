/root/repo/target/debug/deps/proptest_collectives-34afcb56046539f2.d: crates/comm/tests/proptest_collectives.rs

/root/repo/target/debug/deps/proptest_collectives-34afcb56046539f2: crates/comm/tests/proptest_collectives.rs

crates/comm/tests/proptest_collectives.rs:
