/root/repo/target/debug/deps/fault_tolerance-e2424d22a53df3d2.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-e2424d22a53df3d2: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
