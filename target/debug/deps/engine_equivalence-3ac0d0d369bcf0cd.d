/root/repo/target/debug/deps/engine_equivalence-3ac0d0d369bcf0cd.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-3ac0d0d369bcf0cd: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
