/root/repo/target/debug/deps/fig5_strong_scaling-50e87c600ae630c3.d: crates/bench/src/bin/fig5_strong_scaling.rs

/root/repo/target/debug/deps/fig5_strong_scaling-50e87c600ae630c3: crates/bench/src/bin/fig5_strong_scaling.rs

crates/bench/src/bin/fig5_strong_scaling.rs:
