/root/repo/target/debug/deps/table1_topologies-22ea0ae51af43ce2.d: crates/bench/src/bin/table1_topologies.rs

/root/repo/target/debug/deps/table1_topologies-22ea0ae51af43ce2: crates/bench/src/bin/table1_topologies.rs

crates/bench/src/bin/table1_topologies.rs:
