/root/repo/target/debug/deps/fault_tolerance-0504bba7ede0bbcc.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-0504bba7ede0bbcc: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
