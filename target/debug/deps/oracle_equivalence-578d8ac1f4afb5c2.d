/root/repo/target/debug/deps/oracle_equivalence-578d8ac1f4afb5c2.d: tests/oracle_equivalence.rs

/root/repo/target/debug/deps/oracle_equivalence-578d8ac1f4afb5c2: tests/oracle_equivalence.rs

tests/oracle_equivalence.rs:
