/root/repo/target/debug/deps/bgl_bench-ca8015140c3aa79e.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libbgl_bench-ca8015140c3aa79e.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libbgl_bench-ca8015140c3aa79e.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
