/root/repo/target/debug/deps/bgl_torus-e04ee5c0606a8ff6.d: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libbgl_torus-e04ee5c0606a8ff6.rmeta: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs Cargo.toml

crates/torus/src/lib.rs:
crates/torus/src/coord.rs:
crates/torus/src/cost.rs:
crates/torus/src/fault.rs:
crates/torus/src/machine.rs:
crates/torus/src/mapping.rs:
crates/torus/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
