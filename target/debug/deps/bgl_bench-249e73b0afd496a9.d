/root/repo/target/debug/deps/bgl_bench-249e73b0afd496a9.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/bgl_bench-249e73b0afd496a9: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
