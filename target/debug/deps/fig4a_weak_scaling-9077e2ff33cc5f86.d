/root/repo/target/debug/deps/fig4a_weak_scaling-9077e2ff33cc5f86.d: crates/bench/src/bin/fig4a_weak_scaling.rs

/root/repo/target/debug/deps/fig4a_weak_scaling-9077e2ff33cc5f86: crates/bench/src/bin/fig4a_weak_scaling.rs

crates/bench/src/bin/fig4a_weak_scaling.rs:
