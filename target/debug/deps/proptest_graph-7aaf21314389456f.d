/root/repo/target/debug/deps/proptest_graph-7aaf21314389456f.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/proptest_graph-7aaf21314389456f: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
