/root/repo/target/debug/deps/fig4b_message_volume-383629f915963a31.d: crates/bench/src/bin/fig4b_message_volume.rs

/root/repo/target/debug/deps/fig4b_message_volume-383629f915963a31: crates/bench/src/bin/fig4b_message_volume.rs

crates/bench/src/bin/fig4b_message_volume.rs:
