/root/repo/target/debug/deps/fig5_strong_scaling-29ab91ec985b2310.d: crates/bench/src/bin/fig5_strong_scaling.rs

/root/repo/target/debug/deps/fig5_strong_scaling-29ab91ec985b2310: crates/bench/src/bin/fig5_strong_scaling.rs

crates/bench/src/bin/fig5_strong_scaling.rs:
