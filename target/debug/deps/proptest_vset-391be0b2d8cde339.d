/root/repo/target/debug/deps/proptest_vset-391be0b2d8cde339.d: crates/comm/tests/proptest_vset.rs

/root/repo/target/debug/deps/proptest_vset-391be0b2d8cde339: crates/comm/tests/proptest_vset.rs

crates/comm/tests/proptest_vset.rs:
