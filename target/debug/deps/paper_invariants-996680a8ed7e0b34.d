/root/repo/target/debug/deps/paper_invariants-996680a8ed7e0b34.d: tests/paper_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_invariants-996680a8ed7e0b34.rmeta: tests/paper_invariants.rs Cargo.toml

tests/paper_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
