/root/repo/target/debug/deps/fig6_partition_volume-3f90ef2bd2615e4c.d: crates/bench/src/bin/fig6_partition_volume.rs

/root/repo/target/debug/deps/fig6_partition_volume-3f90ef2bd2615e4c: crates/bench/src/bin/fig6_partition_volume.rs

crates/bench/src/bin/fig6_partition_volume.rs:
