/root/repo/target/debug/deps/determinism-d036219979b95e78.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-d036219979b95e78: tests/determinism.rs

tests/determinism.rs:
