/root/repo/target/debug/deps/fig4c_bidirectional-4e0c6d48574d10d6.d: crates/bench/src/bin/fig4c_bidirectional.rs

/root/repo/target/debug/deps/fig4c_bidirectional-4e0c6d48574d10d6: crates/bench/src/bin/fig4c_bidirectional.rs

crates/bench/src/bin/fig4c_bidirectional.rs:
