/root/repo/target/debug/deps/determinism-a94cafcbd7ff86af.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-a94cafcbd7ff86af: tests/determinism.rs

tests/determinism.rs:
