/root/repo/target/debug/deps/bgl_bfs-acfbb63eca35e956.d: src/lib.rs

/root/repo/target/debug/deps/libbgl_bfs-acfbb63eca35e956.rlib: src/lib.rs

/root/repo/target/debug/deps/libbgl_bfs-acfbb63eca35e956.rmeta: src/lib.rs

src/lib.rs:
