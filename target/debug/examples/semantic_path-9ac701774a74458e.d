/root/repo/target/debug/examples/semantic_path-9ac701774a74458e.d: examples/semantic_path.rs Cargo.toml

/root/repo/target/debug/examples/libsemantic_path-9ac701774a74458e.rmeta: examples/semantic_path.rs Cargo.toml

examples/semantic_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
