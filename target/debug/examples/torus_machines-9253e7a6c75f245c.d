/root/repo/target/debug/examples/torus_machines-9253e7a6c75f245c.d: examples/torus_machines.rs

/root/repo/target/debug/examples/torus_machines-9253e7a6c75f245c: examples/torus_machines.rs

examples/torus_machines.rs:
