/root/repo/target/debug/examples/topology_sweep-1122543c62092fe0.d: examples/topology_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libtopology_sweep-1122543c62092fe0.rmeta: examples/topology_sweep.rs Cargo.toml

examples/topology_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
