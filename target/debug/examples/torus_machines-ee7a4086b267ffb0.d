/root/repo/target/debug/examples/torus_machines-ee7a4086b267ffb0.d: examples/torus_machines.rs Cargo.toml

/root/repo/target/debug/examples/libtorus_machines-ee7a4086b267ffb0.rmeta: examples/torus_machines.rs Cargo.toml

examples/torus_machines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
