/root/repo/target/debug/examples/threaded_vs_sim-0da4f1fe0e78c0dd.d: examples/threaded_vs_sim.rs

/root/repo/target/debug/examples/threaded_vs_sim-0da4f1fe0e78c0dd: examples/threaded_vs_sim.rs

examples/threaded_vs_sim.rs:
