/root/repo/target/debug/examples/threaded_vs_sim-cd68b071249c8d86.d: examples/threaded_vs_sim.rs Cargo.toml

/root/repo/target/debug/examples/libthreaded_vs_sim-cd68b071249c8d86.rmeta: examples/threaded_vs_sim.rs Cargo.toml

examples/threaded_vs_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
