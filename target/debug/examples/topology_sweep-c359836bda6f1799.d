/root/repo/target/debug/examples/topology_sweep-c359836bda6f1799.d: examples/topology_sweep.rs

/root/repo/target/debug/examples/topology_sweep-c359836bda6f1799: examples/topology_sweep.rs

examples/topology_sweep.rs:
