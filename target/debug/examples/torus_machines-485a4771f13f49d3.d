/root/repo/target/debug/examples/torus_machines-485a4771f13f49d3.d: examples/torus_machines.rs Cargo.toml

/root/repo/target/debug/examples/libtorus_machines-485a4771f13f49d3.rmeta: examples/torus_machines.rs Cargo.toml

examples/torus_machines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
