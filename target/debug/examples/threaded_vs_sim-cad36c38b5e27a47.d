/root/repo/target/debug/examples/threaded_vs_sim-cad36c38b5e27a47.d: examples/threaded_vs_sim.rs

/root/repo/target/debug/examples/threaded_vs_sim-cad36c38b5e27a47: examples/threaded_vs_sim.rs

examples/threaded_vs_sim.rs:
