/root/repo/target/debug/examples/graph500_style-c0959bcd5677137c.d: examples/graph500_style.rs Cargo.toml

/root/repo/target/debug/examples/libgraph500_style-c0959bcd5677137c.rmeta: examples/graph500_style.rs Cargo.toml

examples/graph500_style.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
