/root/repo/target/debug/examples/semantic_path-25de0688ac2dd8ed.d: examples/semantic_path.rs

/root/repo/target/debug/examples/semantic_path-25de0688ac2dd8ed: examples/semantic_path.rs

examples/semantic_path.rs:
