/root/repo/target/debug/examples/topology_sweep-0036c9bb176a93b3.d: examples/topology_sweep.rs

/root/repo/target/debug/examples/topology_sweep-0036c9bb176a93b3: examples/topology_sweep.rs

examples/topology_sweep.rs:
