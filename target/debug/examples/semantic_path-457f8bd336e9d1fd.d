/root/repo/target/debug/examples/semantic_path-457f8bd336e9d1fd.d: examples/semantic_path.rs

/root/repo/target/debug/examples/semantic_path-457f8bd336e9d1fd: examples/semantic_path.rs

examples/semantic_path.rs:
