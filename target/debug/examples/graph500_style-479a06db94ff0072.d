/root/repo/target/debug/examples/graph500_style-479a06db94ff0072.d: examples/graph500_style.rs

/root/repo/target/debug/examples/graph500_style-479a06db94ff0072: examples/graph500_style.rs

examples/graph500_style.rs:
