/root/repo/target/debug/examples/small_world-c8a11f7220faf3fd.d: examples/small_world.rs Cargo.toml

/root/repo/target/debug/examples/libsmall_world-c8a11f7220faf3fd.rmeta: examples/small_world.rs Cargo.toml

examples/small_world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
