/root/repo/target/debug/examples/semantic_path-fade2c72200b8cc3.d: examples/semantic_path.rs Cargo.toml

/root/repo/target/debug/examples/libsemantic_path-fade2c72200b8cc3.rmeta: examples/semantic_path.rs Cargo.toml

examples/semantic_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
