/root/repo/target/debug/examples/quickstart-e8f42a06ebe70018.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e8f42a06ebe70018: examples/quickstart.rs

examples/quickstart.rs:
