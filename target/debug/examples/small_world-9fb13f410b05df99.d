/root/repo/target/debug/examples/small_world-9fb13f410b05df99.d: examples/small_world.rs

/root/repo/target/debug/examples/small_world-9fb13f410b05df99: examples/small_world.rs

examples/small_world.rs:
