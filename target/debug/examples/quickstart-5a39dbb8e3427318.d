/root/repo/target/debug/examples/quickstart-5a39dbb8e3427318.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5a39dbb8e3427318: examples/quickstart.rs

examples/quickstart.rs:
