/root/repo/target/debug/examples/graph500_style-be6475b76f429836.d: examples/graph500_style.rs

/root/repo/target/debug/examples/graph500_style-be6475b76f429836: examples/graph500_style.rs

examples/graph500_style.rs:
