/root/repo/target/debug/examples/small_world-e9e5af5c24205360.d: examples/small_world.rs Cargo.toml

/root/repo/target/debug/examples/libsmall_world-e9e5af5c24205360.rmeta: examples/small_world.rs Cargo.toml

examples/small_world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
