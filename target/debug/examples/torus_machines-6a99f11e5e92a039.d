/root/repo/target/debug/examples/torus_machines-6a99f11e5e92a039.d: examples/torus_machines.rs

/root/repo/target/debug/examples/torus_machines-6a99f11e5e92a039: examples/torus_machines.rs

examples/torus_machines.rs:
