/root/repo/target/debug/examples/small_world-d278946bb95dc167.d: examples/small_world.rs

/root/repo/target/debug/examples/small_world-d278946bb95dc167: examples/small_world.rs

examples/small_world.rs:
