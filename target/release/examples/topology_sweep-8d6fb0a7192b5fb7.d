/root/repo/target/release/examples/topology_sweep-8d6fb0a7192b5fb7.d: examples/topology_sweep.rs

/root/repo/target/release/examples/topology_sweep-8d6fb0a7192b5fb7: examples/topology_sweep.rs

examples/topology_sweep.rs:
