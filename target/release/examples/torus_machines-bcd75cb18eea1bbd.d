/root/repo/target/release/examples/torus_machines-bcd75cb18eea1bbd.d: examples/torus_machines.rs

/root/repo/target/release/examples/torus_machines-bcd75cb18eea1bbd: examples/torus_machines.rs

examples/torus_machines.rs:
