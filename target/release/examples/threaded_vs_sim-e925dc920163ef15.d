/root/repo/target/release/examples/threaded_vs_sim-e925dc920163ef15.d: examples/threaded_vs_sim.rs

/root/repo/target/release/examples/threaded_vs_sim-e925dc920163ef15: examples/threaded_vs_sim.rs

examples/threaded_vs_sim.rs:
