/root/repo/target/release/examples/small_world-bc16e027bf4f5657.d: examples/small_world.rs

/root/repo/target/release/examples/small_world-bc16e027bf4f5657: examples/small_world.rs

examples/small_world.rs:
