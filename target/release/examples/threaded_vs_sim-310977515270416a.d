/root/repo/target/release/examples/threaded_vs_sim-310977515270416a.d: examples/threaded_vs_sim.rs

/root/repo/target/release/examples/threaded_vs_sim-310977515270416a: examples/threaded_vs_sim.rs

examples/threaded_vs_sim.rs:
