/root/repo/target/release/examples/small_world-413b3d2c4547ff5d.d: examples/small_world.rs

/root/repo/target/release/examples/small_world-413b3d2c4547ff5d: examples/small_world.rs

examples/small_world.rs:
