/root/repo/target/release/examples/torus_machines-fe1f81fe291ca42d.d: examples/torus_machines.rs

/root/repo/target/release/examples/torus_machines-fe1f81fe291ca42d: examples/torus_machines.rs

examples/torus_machines.rs:
