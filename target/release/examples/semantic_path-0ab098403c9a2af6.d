/root/repo/target/release/examples/semantic_path-0ab098403c9a2af6.d: examples/semantic_path.rs

/root/repo/target/release/examples/semantic_path-0ab098403c9a2af6: examples/semantic_path.rs

examples/semantic_path.rs:
