/root/repo/target/release/examples/topology_sweep-11090a12ffdc4477.d: examples/topology_sweep.rs

/root/repo/target/release/examples/topology_sweep-11090a12ffdc4477: examples/topology_sweep.rs

examples/topology_sweep.rs:
