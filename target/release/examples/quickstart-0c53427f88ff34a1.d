/root/repo/target/release/examples/quickstart-0c53427f88ff34a1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0c53427f88ff34a1: examples/quickstart.rs

examples/quickstart.rs:
