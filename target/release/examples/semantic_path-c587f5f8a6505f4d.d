/root/repo/target/release/examples/semantic_path-c587f5f8a6505f4d.d: examples/semantic_path.rs

/root/repo/target/release/examples/semantic_path-c587f5f8a6505f4d: examples/semantic_path.rs

examples/semantic_path.rs:
