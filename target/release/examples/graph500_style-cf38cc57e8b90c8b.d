/root/repo/target/release/examples/graph500_style-cf38cc57e8b90c8b.d: examples/graph500_style.rs

/root/repo/target/release/examples/graph500_style-cf38cc57e8b90c8b: examples/graph500_style.rs

examples/graph500_style.rs:
