/root/repo/target/release/examples/_frontier_probe-7d2fd870c6f995c6.d: examples/_frontier_probe.rs

/root/repo/target/release/examples/_frontier_probe-7d2fd870c6f995c6: examples/_frontier_probe.rs

examples/_frontier_probe.rs:
