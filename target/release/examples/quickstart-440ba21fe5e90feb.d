/root/repo/target/release/examples/quickstart-440ba21fe5e90feb.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-440ba21fe5e90feb: examples/quickstart.rs

examples/quickstart.rs:
