/root/repo/target/release/examples/graph500_style-608a5fe4f60acb37.d: examples/graph500_style.rs

/root/repo/target/release/examples/graph500_style-608a5fe4f60acb37: examples/graph500_style.rs

examples/graph500_style.rs:
