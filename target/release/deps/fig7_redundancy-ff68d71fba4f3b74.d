/root/repo/target/release/deps/fig7_redundancy-ff68d71fba4f3b74.d: crates/bench/src/bin/fig7_redundancy.rs

/root/repo/target/release/deps/fig7_redundancy-ff68d71fba4f3b74: crates/bench/src/bin/fig7_redundancy.rs

crates/bench/src/bin/fig7_redundancy.rs:
