/root/repo/target/release/deps/rustc_hash-e3707230bc2816e3.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-e3707230bc2816e3.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-e3707230bc2816e3.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
