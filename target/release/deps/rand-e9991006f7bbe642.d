/root/repo/target/release/deps/rand-e9991006f7bbe642.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-e9991006f7bbe642: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
