/root/repo/target/release/deps/engine_equivalence-69bb866480077591.d: tests/engine_equivalence.rs

/root/repo/target/release/deps/engine_equivalence-69bb866480077591: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
