/root/repo/target/release/deps/proptest_torus-2c85928f46a36526.d: crates/torus/tests/proptest_torus.rs

/root/repo/target/release/deps/proptest_torus-2c85928f46a36526: crates/torus/tests/proptest_torus.rs

crates/torus/tests/proptest_torus.rs:
