/root/repo/target/release/deps/bgl_bfs-b89dedd6748598e0.d: src/lib.rs

/root/repo/target/release/deps/libbgl_bfs-b89dedd6748598e0.rlib: src/lib.rs

/root/repo/target/release/deps/libbgl_bfs-b89dedd6748598e0.rmeta: src/lib.rs

src/lib.rs:
