/root/repo/target/release/deps/bench_setops-6baf0e3923a23214.d: crates/bench/src/bin/bench_setops.rs

/root/repo/target/release/deps/bench_setops-6baf0e3923a23214: crates/bench/src/bin/bench_setops.rs

crates/bench/src/bin/bench_setops.rs:
