/root/repo/target/release/deps/fig5_strong_scaling-a24948304cfea7f9.d: crates/bench/src/bin/fig5_strong_scaling.rs

/root/repo/target/release/deps/fig5_strong_scaling-a24948304cfea7f9: crates/bench/src/bin/fig5_strong_scaling.rs

crates/bench/src/bin/fig5_strong_scaling.rs:
