/root/repo/target/release/deps/bgl_graph-128ddf7800fb9417.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

/root/repo/target/release/deps/bgl_graph-128ddf7800fb9417: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/dist.rs crates/graph/src/gen.rs crates/graph/src/partition.rs crates/graph/src/spec.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/dist.rs:
crates/graph/src/gen.rs:
crates/graph/src/partition.rs:
crates/graph/src/spec.rs:
crates/graph/src/stats.rs:
