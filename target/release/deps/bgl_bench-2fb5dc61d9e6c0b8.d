/root/repo/target/release/deps/bgl_bench-2fb5dc61d9e6c0b8.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libbgl_bench-2fb5dc61d9e6c0b8.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libbgl_bench-2fb5dc61d9e6c0b8.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
