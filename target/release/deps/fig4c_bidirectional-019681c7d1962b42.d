/root/repo/target/release/deps/fig4c_bidirectional-019681c7d1962b42.d: crates/bench/src/bin/fig4c_bidirectional.rs

/root/repo/target/release/deps/fig4c_bidirectional-019681c7d1962b42: crates/bench/src/bin/fig4c_bidirectional.rs

crates/bench/src/bin/fig4c_bidirectional.rs:
