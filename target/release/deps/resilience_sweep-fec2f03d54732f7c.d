/root/repo/target/release/deps/resilience_sweep-fec2f03d54732f7c.d: crates/bench/src/bin/resilience_sweep.rs

/root/repo/target/release/deps/resilience_sweep-fec2f03d54732f7c: crates/bench/src/bin/resilience_sweep.rs

crates/bench/src/bin/resilience_sweep.rs:
