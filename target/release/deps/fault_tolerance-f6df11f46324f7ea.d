/root/repo/target/release/deps/fault_tolerance-f6df11f46324f7ea.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-f6df11f46324f7ea: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
