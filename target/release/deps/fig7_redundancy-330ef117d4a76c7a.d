/root/repo/target/release/deps/fig7_redundancy-330ef117d4a76c7a.d: crates/bench/src/bin/fig7_redundancy.rs

/root/repo/target/release/deps/fig7_redundancy-330ef117d4a76c7a: crates/bench/src/bin/fig7_redundancy.rs

crates/bench/src/bin/fig7_redundancy.rs:
