/root/repo/target/release/deps/resilience_sweep-f7a4cb6aebe07222.d: crates/bench/src/bin/resilience_sweep.rs

/root/repo/target/release/deps/resilience_sweep-f7a4cb6aebe07222: crates/bench/src/bin/resilience_sweep.rs

crates/bench/src/bin/resilience_sweep.rs:
