/root/repo/target/release/deps/bgl_bfs-25873dc8d29ba4f6.d: src/bin/cli.rs

/root/repo/target/release/deps/bgl_bfs-25873dc8d29ba4f6: src/bin/cli.rs

src/bin/cli.rs:
