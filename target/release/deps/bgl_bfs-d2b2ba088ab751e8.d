/root/repo/target/release/deps/bgl_bfs-d2b2ba088ab751e8.d: src/lib.rs

/root/repo/target/release/deps/bgl_bfs-d2b2ba088ab751e8: src/lib.rs

src/lib.rs:
