/root/repo/target/release/deps/bgl_bfs-3edacf4665af947f.d: src/lib.rs

/root/repo/target/release/deps/bgl_bfs-3edacf4665af947f: src/lib.rs

src/lib.rs:
