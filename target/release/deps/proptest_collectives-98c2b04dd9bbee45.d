/root/repo/target/release/deps/proptest_collectives-98c2b04dd9bbee45.d: crates/comm/tests/proptest_collectives.rs

/root/repo/target/release/deps/proptest_collectives-98c2b04dd9bbee45: crates/comm/tests/proptest_collectives.rs

crates/comm/tests/proptest_collectives.rs:
