/root/repo/target/release/deps/fig5_strong_scaling-3174aada2255a1ee.d: crates/bench/src/bin/fig5_strong_scaling.rs

/root/repo/target/release/deps/fig5_strong_scaling-3174aada2255a1ee: crates/bench/src/bin/fig5_strong_scaling.rs

crates/bench/src/bin/fig5_strong_scaling.rs:
