/root/repo/target/release/deps/proptest_graph-e722785733af657d.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/release/deps/proptest_graph-e722785733af657d: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
