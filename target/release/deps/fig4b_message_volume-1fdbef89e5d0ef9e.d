/root/repo/target/release/deps/fig4b_message_volume-1fdbef89e5d0ef9e.d: crates/bench/src/bin/fig4b_message_volume.rs

/root/repo/target/release/deps/fig4b_message_volume-1fdbef89e5d0ef9e: crates/bench/src/bin/fig4b_message_volume.rs

crates/bench/src/bin/fig4b_message_volume.rs:
