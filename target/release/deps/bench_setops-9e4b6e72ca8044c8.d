/root/repo/target/release/deps/bench_setops-9e4b6e72ca8044c8.d: crates/bench/src/bin/bench_setops.rs

/root/repo/target/release/deps/bench_setops-9e4b6e72ca8044c8: crates/bench/src/bin/bench_setops.rs

crates/bench/src/bin/bench_setops.rs:
