/root/repo/target/release/deps/determinism-a66bfed50bb123eb.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-a66bfed50bb123eb: tests/determinism.rs

tests/determinism.rs:
