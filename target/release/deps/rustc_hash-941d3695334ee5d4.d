/root/repo/target/release/deps/rustc_hash-941d3695334ee5d4.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/rustc_hash-941d3695334ee5d4: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
