/root/repo/target/release/deps/fig5_strong_scaling-28183ea32c84b1fb.d: crates/bench/src/bin/fig5_strong_scaling.rs

/root/repo/target/release/deps/fig5_strong_scaling-28183ea32c84b1fb: crates/bench/src/bin/fig5_strong_scaling.rs

crates/bench/src/bin/fig5_strong_scaling.rs:
