/root/repo/target/release/deps/bgl_bench-5d205c29819e796a.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libbgl_bench-5d205c29819e796a.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libbgl_bench-5d205c29819e796a.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
