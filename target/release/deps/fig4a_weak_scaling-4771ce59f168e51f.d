/root/repo/target/release/deps/fig4a_weak_scaling-4771ce59f168e51f.d: crates/bench/src/bin/fig4a_weak_scaling.rs

/root/repo/target/release/deps/fig4a_weak_scaling-4771ce59f168e51f: crates/bench/src/bin/fig4a_weak_scaling.rs

crates/bench/src/bin/fig4a_weak_scaling.rs:
