/root/repo/target/release/deps/fig7_redundancy-37987509be8d5dfc.d: crates/bench/src/bin/fig7_redundancy.rs

/root/repo/target/release/deps/fig7_redundancy-37987509be8d5dfc: crates/bench/src/bin/fig7_redundancy.rs

crates/bench/src/bin/fig7_redundancy.rs:
