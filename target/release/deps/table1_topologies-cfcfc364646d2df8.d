/root/repo/target/release/deps/table1_topologies-cfcfc364646d2df8.d: crates/bench/src/bin/table1_topologies.rs

/root/repo/target/release/deps/table1_topologies-cfcfc364646d2df8: crates/bench/src/bin/table1_topologies.rs

crates/bench/src/bin/table1_topologies.rs:
