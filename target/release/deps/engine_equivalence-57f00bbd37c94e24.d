/root/repo/target/release/deps/engine_equivalence-57f00bbd37c94e24.d: tests/engine_equivalence.rs

/root/repo/target/release/deps/engine_equivalence-57f00bbd37c94e24: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
