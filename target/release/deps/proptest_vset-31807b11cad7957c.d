/root/repo/target/release/deps/proptest_vset-31807b11cad7957c.d: crates/comm/tests/proptest_vset.rs

/root/repo/target/release/deps/proptest_vset-31807b11cad7957c: crates/comm/tests/proptest_vset.rs

crates/comm/tests/proptest_vset.rs:
