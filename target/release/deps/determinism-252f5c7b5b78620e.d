/root/repo/target/release/deps/determinism-252f5c7b5b78620e.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-252f5c7b5b78620e: tests/determinism.rs

tests/determinism.rs:
