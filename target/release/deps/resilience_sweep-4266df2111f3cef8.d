/root/repo/target/release/deps/resilience_sweep-4266df2111f3cef8.d: crates/bench/src/bin/resilience_sweep.rs

/root/repo/target/release/deps/resilience_sweep-4266df2111f3cef8: crates/bench/src/bin/resilience_sweep.rs

crates/bench/src/bin/resilience_sweep.rs:
