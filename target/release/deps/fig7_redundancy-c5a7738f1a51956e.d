/root/repo/target/release/deps/fig7_redundancy-c5a7738f1a51956e.d: crates/bench/src/bin/fig7_redundancy.rs

/root/repo/target/release/deps/fig7_redundancy-c5a7738f1a51956e: crates/bench/src/bin/fig7_redundancy.rs

crates/bench/src/bin/fig7_redundancy.rs:
