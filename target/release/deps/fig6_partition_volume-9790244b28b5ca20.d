/root/repo/target/release/deps/fig6_partition_volume-9790244b28b5ca20.d: crates/bench/src/bin/fig6_partition_volume.rs

/root/repo/target/release/deps/fig6_partition_volume-9790244b28b5ca20: crates/bench/src/bin/fig6_partition_volume.rs

crates/bench/src/bin/fig6_partition_volume.rs:
