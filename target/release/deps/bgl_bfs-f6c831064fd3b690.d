/root/repo/target/release/deps/bgl_bfs-f6c831064fd3b690.d: src/bin/cli.rs

/root/repo/target/release/deps/bgl_bfs-f6c831064fd3b690: src/bin/cli.rs

src/bin/cli.rs:
