/root/repo/target/release/deps/fig4b_message_volume-c36178d195880b32.d: crates/bench/src/bin/fig4b_message_volume.rs

/root/repo/target/release/deps/fig4b_message_volume-c36178d195880b32: crates/bench/src/bin/fig4b_message_volume.rs

crates/bench/src/bin/fig4b_message_volume.rs:
