/root/repo/target/release/deps/rayon-280a5c55cfdd8be8.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-280a5c55cfdd8be8: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
