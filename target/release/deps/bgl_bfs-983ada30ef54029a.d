/root/repo/target/release/deps/bgl_bfs-983ada30ef54029a.d: src/lib.rs

/root/repo/target/release/deps/libbgl_bfs-983ada30ef54029a.rlib: src/lib.rs

/root/repo/target/release/deps/libbgl_bfs-983ada30ef54029a.rmeta: src/lib.rs

src/lib.rs:
