/root/repo/target/release/deps/table1_topologies-a9b3d2e3be081f69.d: crates/bench/src/bin/table1_topologies.rs

/root/repo/target/release/deps/table1_topologies-a9b3d2e3be081f69: crates/bench/src/bin/table1_topologies.rs

crates/bench/src/bin/table1_topologies.rs:
