/root/repo/target/release/deps/fig4b_message_volume-a9cafe6717655b42.d: crates/bench/src/bin/fig4b_message_volume.rs

/root/repo/target/release/deps/fig4b_message_volume-a9cafe6717655b42: crates/bench/src/bin/fig4b_message_volume.rs

crates/bench/src/bin/fig4b_message_volume.rs:
