/root/repo/target/release/deps/bgl_comm-6f1f64d98e93e550.d: crates/comm/src/lib.rs crates/comm/src/buffer.rs crates/comm/src/collectives/mod.rs crates/comm/src/collectives/allgather.rs crates/comm/src/collectives/alltoall.rs crates/comm/src/collectives/reduce_scatter.rs crates/comm/src/collectives/two_phase.rs crates/comm/src/error.rs crates/comm/src/setops.rs crates/comm/src/sim.rs crates/comm/src/stats.rs crates/comm/src/threaded.rs crates/comm/src/topology.rs crates/comm/src/vset.rs

/root/repo/target/release/deps/bgl_comm-6f1f64d98e93e550: crates/comm/src/lib.rs crates/comm/src/buffer.rs crates/comm/src/collectives/mod.rs crates/comm/src/collectives/allgather.rs crates/comm/src/collectives/alltoall.rs crates/comm/src/collectives/reduce_scatter.rs crates/comm/src/collectives/two_phase.rs crates/comm/src/error.rs crates/comm/src/setops.rs crates/comm/src/sim.rs crates/comm/src/stats.rs crates/comm/src/threaded.rs crates/comm/src/topology.rs crates/comm/src/vset.rs

crates/comm/src/lib.rs:
crates/comm/src/buffer.rs:
crates/comm/src/collectives/mod.rs:
crates/comm/src/collectives/allgather.rs:
crates/comm/src/collectives/alltoall.rs:
crates/comm/src/collectives/reduce_scatter.rs:
crates/comm/src/collectives/two_phase.rs:
crates/comm/src/error.rs:
crates/comm/src/setops.rs:
crates/comm/src/sim.rs:
crates/comm/src/stats.rs:
crates/comm/src/threaded.rs:
crates/comm/src/topology.rs:
crates/comm/src/vset.rs:
