/root/repo/target/release/deps/table1_topologies-456881b617a1ec76.d: crates/bench/src/bin/table1_topologies.rs

/root/repo/target/release/deps/table1_topologies-456881b617a1ec76: crates/bench/src/bin/table1_topologies.rs

crates/bench/src/bin/table1_topologies.rs:
