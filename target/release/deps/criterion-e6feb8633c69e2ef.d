/root/repo/target/release/deps/criterion-e6feb8633c69e2ef.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-e6feb8633c69e2ef: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
