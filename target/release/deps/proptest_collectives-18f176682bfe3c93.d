/root/repo/target/release/deps/proptest_collectives-18f176682bfe3c93.d: crates/comm/tests/proptest_collectives.rs

/root/repo/target/release/deps/proptest_collectives-18f176682bfe3c93: crates/comm/tests/proptest_collectives.rs

crates/comm/tests/proptest_collectives.rs:
