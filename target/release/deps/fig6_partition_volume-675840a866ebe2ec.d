/root/repo/target/release/deps/fig6_partition_volume-675840a866ebe2ec.d: crates/bench/src/bin/fig6_partition_volume.rs

/root/repo/target/release/deps/fig6_partition_volume-675840a866ebe2ec: crates/bench/src/bin/fig6_partition_volume.rs

crates/bench/src/bin/fig6_partition_volume.rs:
