/root/repo/target/release/deps/paper_invariants-f272023eb0acf6f8.d: tests/paper_invariants.rs

/root/repo/target/release/deps/paper_invariants-f272023eb0acf6f8: tests/paper_invariants.rs

tests/paper_invariants.rs:
