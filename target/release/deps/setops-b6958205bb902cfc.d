/root/repo/target/release/deps/setops-b6958205bb902cfc.d: crates/bench/benches/setops.rs

/root/repo/target/release/deps/setops-b6958205bb902cfc: crates/bench/benches/setops.rs

crates/bench/benches/setops.rs:
