/root/repo/target/release/deps/fig4c_bidirectional-7e332aae81dfd9c3.d: crates/bench/src/bin/fig4c_bidirectional.rs

/root/repo/target/release/deps/fig4c_bidirectional-7e332aae81dfd9c3: crates/bench/src/bin/fig4c_bidirectional.rs

crates/bench/src/bin/fig4c_bidirectional.rs:
