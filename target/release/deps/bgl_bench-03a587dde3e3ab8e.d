/root/repo/target/release/deps/bgl_bench-03a587dde3e3ab8e.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/bgl_bench-03a587dde3e3ab8e: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
