/root/repo/target/release/deps/bgl_bfs-57412a0f51d67bb5.d: src/bin/cli.rs

/root/repo/target/release/deps/bgl_bfs-57412a0f51d67bb5: src/bin/cli.rs

src/bin/cli.rs:
