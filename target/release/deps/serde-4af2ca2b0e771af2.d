/root/repo/target/release/deps/serde-4af2ca2b0e771af2.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-4af2ca2b0e771af2: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
