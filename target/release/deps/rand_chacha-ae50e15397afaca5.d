/root/repo/target/release/deps/rand_chacha-ae50e15397afaca5.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-ae50e15397afaca5: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
