/root/repo/target/release/deps/fig4a_weak_scaling-641d0aee6fc3e7ea.d: crates/bench/src/bin/fig4a_weak_scaling.rs

/root/repo/target/release/deps/fig4a_weak_scaling-641d0aee6fc3e7ea: crates/bench/src/bin/fig4a_weak_scaling.rs

crates/bench/src/bin/fig4a_weak_scaling.rs:
