/root/repo/target/release/deps/fig5_strong_scaling-57b5c68ab776d941.d: crates/bench/src/bin/fig5_strong_scaling.rs

/root/repo/target/release/deps/fig5_strong_scaling-57b5c68ab776d941: crates/bench/src/bin/fig5_strong_scaling.rs

crates/bench/src/bin/fig5_strong_scaling.rs:
