/root/repo/target/release/deps/fault_tolerance-a79489bcf4ddfe35.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-a79489bcf4ddfe35: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
