/root/repo/target/release/deps/proptest_graph-fa0e2f68961ddd16.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/release/deps/proptest_graph-fa0e2f68961ddd16: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
