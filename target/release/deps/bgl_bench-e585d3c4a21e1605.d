/root/repo/target/release/deps/bgl_bench-e585d3c4a21e1605.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/bgl_bench-e585d3c4a21e1605: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/harness.rs:
