/root/repo/target/release/deps/fig4c_bidirectional-a8727399a2c9a65c.d: crates/bench/src/bin/fig4c_bidirectional.rs

/root/repo/target/release/deps/fig4c_bidirectional-a8727399a2c9a65c: crates/bench/src/bin/fig4c_bidirectional.rs

crates/bench/src/bin/fig4c_bidirectional.rs:
