/root/repo/target/release/deps/fig4c_bidirectional-712730f247fb49a3.d: crates/bench/src/bin/fig4c_bidirectional.rs

/root/repo/target/release/deps/fig4c_bidirectional-712730f247fb49a3: crates/bench/src/bin/fig4c_bidirectional.rs

crates/bench/src/bin/fig4c_bidirectional.rs:
