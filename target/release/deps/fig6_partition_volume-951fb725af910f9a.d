/root/repo/target/release/deps/fig6_partition_volume-951fb725af910f9a.d: crates/bench/src/bin/fig6_partition_volume.rs

/root/repo/target/release/deps/fig6_partition_volume-951fb725af910f9a: crates/bench/src/bin/fig6_partition_volume.rs

crates/bench/src/bin/fig6_partition_volume.rs:
