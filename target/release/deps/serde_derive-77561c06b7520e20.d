/root/repo/target/release/deps/serde_derive-77561c06b7520e20.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-77561c06b7520e20: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
