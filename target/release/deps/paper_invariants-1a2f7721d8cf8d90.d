/root/repo/target/release/deps/paper_invariants-1a2f7721d8cf8d90.d: tests/paper_invariants.rs

/root/repo/target/release/deps/paper_invariants-1a2f7721d8cf8d90: tests/paper_invariants.rs

tests/paper_invariants.rs:
