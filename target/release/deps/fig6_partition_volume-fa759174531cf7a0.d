/root/repo/target/release/deps/fig6_partition_volume-fa759174531cf7a0.d: crates/bench/src/bin/fig6_partition_volume.rs

/root/repo/target/release/deps/fig6_partition_volume-fa759174531cf7a0: crates/bench/src/bin/fig6_partition_volume.rs

crates/bench/src/bin/fig6_partition_volume.rs:
