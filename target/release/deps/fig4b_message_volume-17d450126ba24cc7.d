/root/repo/target/release/deps/fig4b_message_volume-17d450126ba24cc7.d: crates/bench/src/bin/fig4b_message_volume.rs

/root/repo/target/release/deps/fig4b_message_volume-17d450126ba24cc7: crates/bench/src/bin/fig4b_message_volume.rs

crates/bench/src/bin/fig4b_message_volume.rs:
