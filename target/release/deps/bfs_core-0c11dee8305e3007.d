/root/repo/target/release/deps/bfs_core-0c11dee8305e3007.d: crates/core/src/lib.rs crates/core/src/bfs1d.rs crates/core/src/bfs2d.rs crates/core/src/bidir.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/memory.rs crates/core/src/path.rs crates/core/src/reference.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/theory.rs crates/core/src/threaded_run.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libbfs_core-0c11dee8305e3007.rlib: crates/core/src/lib.rs crates/core/src/bfs1d.rs crates/core/src/bfs2d.rs crates/core/src/bidir.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/memory.rs crates/core/src/path.rs crates/core/src/reference.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/theory.rs crates/core/src/threaded_run.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libbfs_core-0c11dee8305e3007.rmeta: crates/core/src/lib.rs crates/core/src/bfs1d.rs crates/core/src/bfs2d.rs crates/core/src/bidir.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/memory.rs crates/core/src/path.rs crates/core/src/reference.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/theory.rs crates/core/src/threaded_run.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/bfs1d.rs:
crates/core/src/bfs2d.rs:
crates/core/src/bidir.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/memory.rs:
crates/core/src/path.rs:
crates/core/src/reference.rs:
crates/core/src/state.rs:
crates/core/src/stats.rs:
crates/core/src/theory.rs:
crates/core/src/threaded_run.rs:
crates/core/src/tree.rs:
