/root/repo/target/release/deps/resilience_sweep-7be58e79c1257f7c.d: crates/bench/src/bin/resilience_sweep.rs

/root/repo/target/release/deps/resilience_sweep-7be58e79c1257f7c: crates/bench/src/bin/resilience_sweep.rs

crates/bench/src/bin/resilience_sweep.rs:
