/root/repo/target/release/deps/bgl_torus-c96f92ed20171c91.d: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/release/deps/bgl_torus-c96f92ed20171c91: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

crates/torus/src/lib.rs:
crates/torus/src/coord.rs:
crates/torus/src/cost.rs:
crates/torus/src/fault.rs:
crates/torus/src/machine.rs:
crates/torus/src/mapping.rs:
crates/torus/src/routing.rs:
