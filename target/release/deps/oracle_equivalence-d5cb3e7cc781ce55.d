/root/repo/target/release/deps/oracle_equivalence-d5cb3e7cc781ce55.d: tests/oracle_equivalence.rs

/root/repo/target/release/deps/oracle_equivalence-d5cb3e7cc781ce55: tests/oracle_equivalence.rs

tests/oracle_equivalence.rs:
