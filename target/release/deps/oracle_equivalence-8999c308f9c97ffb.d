/root/repo/target/release/deps/oracle_equivalence-8999c308f9c97ffb.d: tests/oracle_equivalence.rs

/root/repo/target/release/deps/oracle_equivalence-8999c308f9c97ffb: tests/oracle_equivalence.rs

tests/oracle_equivalence.rs:
