/root/repo/target/release/deps/bfs_core-9bd282b38125db5d.d: crates/core/src/lib.rs crates/core/src/bfs1d.rs crates/core/src/bfs2d.rs crates/core/src/bidir.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/memory.rs crates/core/src/path.rs crates/core/src/reference.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/theory.rs crates/core/src/threaded_run.rs crates/core/src/tree.rs

/root/repo/target/release/deps/bfs_core-9bd282b38125db5d: crates/core/src/lib.rs crates/core/src/bfs1d.rs crates/core/src/bfs2d.rs crates/core/src/bidir.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/memory.rs crates/core/src/path.rs crates/core/src/reference.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/theory.rs crates/core/src/threaded_run.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/bfs1d.rs:
crates/core/src/bfs2d.rs:
crates/core/src/bidir.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/memory.rs:
crates/core/src/path.rs:
crates/core/src/reference.rs:
crates/core/src/state.rs:
crates/core/src/stats.rs:
crates/core/src/theory.rs:
crates/core/src/threaded_run.rs:
crates/core/src/tree.rs:
