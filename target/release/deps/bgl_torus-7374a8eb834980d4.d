/root/repo/target/release/deps/bgl_torus-7374a8eb834980d4.d: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/release/deps/libbgl_torus-7374a8eb834980d4.rlib: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

/root/repo/target/release/deps/libbgl_torus-7374a8eb834980d4.rmeta: crates/torus/src/lib.rs crates/torus/src/coord.rs crates/torus/src/cost.rs crates/torus/src/fault.rs crates/torus/src/machine.rs crates/torus/src/mapping.rs crates/torus/src/routing.rs

crates/torus/src/lib.rs:
crates/torus/src/coord.rs:
crates/torus/src/cost.rs:
crates/torus/src/fault.rs:
crates/torus/src/machine.rs:
crates/torus/src/mapping.rs:
crates/torus/src/routing.rs:
