/root/repo/target/release/deps/rand_chacha-89b28f09c65190a1.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-89b28f09c65190a1.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-89b28f09c65190a1.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
