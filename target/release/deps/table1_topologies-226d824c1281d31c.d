/root/repo/target/release/deps/table1_topologies-226d824c1281d31c.d: crates/bench/src/bin/table1_topologies.rs

/root/repo/target/release/deps/table1_topologies-226d824c1281d31c: crates/bench/src/bin/table1_topologies.rs

crates/bench/src/bin/table1_topologies.rs:
