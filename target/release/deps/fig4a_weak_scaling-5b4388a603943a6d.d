/root/repo/target/release/deps/fig4a_weak_scaling-5b4388a603943a6d.d: crates/bench/src/bin/fig4a_weak_scaling.rs

/root/repo/target/release/deps/fig4a_weak_scaling-5b4388a603943a6d: crates/bench/src/bin/fig4a_weak_scaling.rs

crates/bench/src/bin/fig4a_weak_scaling.rs:
