/root/repo/target/release/deps/fig4a_weak_scaling-54e0b77892a22c08.d: crates/bench/src/bin/fig4a_weak_scaling.rs

/root/repo/target/release/deps/fig4a_weak_scaling-54e0b77892a22c08: crates/bench/src/bin/fig4a_weak_scaling.rs

crates/bench/src/bin/fig4a_weak_scaling.rs:
