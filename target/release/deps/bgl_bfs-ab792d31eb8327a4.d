/root/repo/target/release/deps/bgl_bfs-ab792d31eb8327a4.d: src/bin/cli.rs

/root/repo/target/release/deps/bgl_bfs-ab792d31eb8327a4: src/bin/cli.rs

src/bin/cli.rs:
