//! Property-based checks on the batched multi-source BFS engine
//! (`bfs_core::multi`): on random graphs, grids, and source batches
//! (duplicates included), every lane of a batched run is bit-identical
//! to its standalone single-source `bfs2d::run`, under serial and rayon
//! host engines and raw and adaptive wire codecs alike — and the whole
//! batch passes the Graph500-style per-lane validator.

use bgl_bfs::core::{bfs2d, multi, BfsConfig, ComputeEngine};
use bgl_bfs::{DistGraph, GraphSpec, ProcessorGrid, SimWorld, WirePolicy};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Family {
    Poisson,
    Rmat,
}

fn any_engine() -> impl Strategy<Value = ComputeEngine> {
    prop_oneof![
        Just(ComputeEngine::Serial),
        Just(ComputeEngine::Rayon),
        Just(ComputeEngine::Auto),
    ]
}

fn any_wire() -> impl Strategy<Value = WirePolicy> {
    prop_oneof![Just(WirePolicy::raw()), Just(WirePolicy::auto())]
}

fn any_family() -> impl Strategy<Value = Family> {
    prop_oneof![Just(Family::Poisson), Just(Family::Rmat)]
}

/// Small random instances: n in the hundreds keeps a proptest case in
/// the low milliseconds while still crossing rank boundaries on every
/// grid shape.
fn instance() -> impl Strategy<Value = (GraphSpec, ProcessorGrid)> {
    (
        any_family(),
        200u64..900,
        2.0f64..8.0,
        0u64..1_000,
        1usize..4,
        1usize..4,
    )
        .prop_map(|(family, n, k, seed, rows, cols)| {
            let spec = match family {
                Family::Poisson => GraphSpec::poisson(n, k, seed),
                Family::Rmat => GraphSpec::rmat(n, k, seed),
            };
            (spec, ProcessorGrid::new(rows, cols))
        })
}

/// 1..=6 sources, drawn with replacement so duplicate-source batches
/// (two lanes racing through identical frontiers) are exercised.
fn sources(n_max: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..n_max, 1..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched lanes ≡ single-source runs, across engines × wires.
    #[test]
    fn lanes_equal_single_source_runs(
        (spec, grid) in instance(),
        srcs in sources(200),
        engine in any_engine(),
        wire in any_wire(),
    ) {
        let srcs: Vec<u64> = srcs.into_iter().map(|s| s % spec.n).collect();
        let graph = DistGraph::build(spec, grid);
        let cfg = multi::MultiConfig { engine, ..multi::MultiConfig::default() };
        let mut world = SimWorld::bluegene(grid).with_wire_policy(wire);
        let r = multi::run(&graph, &mut world, &cfg, &srcs);
        prop_assert_eq!(r.lanes(), srcs.len());
        for (lane, &s) in srcs.iter().enumerate() {
            let mut w = SimWorld::bluegene(grid).with_wire_policy(wire);
            let single = bfs2d::run(
                &graph,
                &mut w,
                &BfsConfig::paper_optimized().with_engine(engine),
                s,
            );
            prop_assert_eq!(
                &r.lane_levels[lane],
                &single.levels,
                "lane {} (source {}) diverged", lane, s
            );
        }
        multi::validate_lanes(&spec, &r).expect("per-lane Graph500-style validation");
    }

    /// Serial and rayon batched runs are bit-identical down to the
    /// simulated clock and probe counters, under both wire codecs.
    #[test]
    fn engines_bit_identical(
        (spec, grid) in instance(),
        srcs in sources(200),
        wire in any_wire(),
    ) {
        let srcs: Vec<u64> = srcs.into_iter().map(|s| s % spec.n).collect();
        let graph = DistGraph::build(spec, grid);
        let run_with = |engine| {
            let cfg = multi::MultiConfig { engine, ..multi::MultiConfig::default() };
            let mut world = SimWorld::bluegene(grid).with_wire_policy(wire);
            let r = multi::run(&graph, &mut world, &cfg, &srcs);
            (r.lane_levels, world.time().to_bits(), r.total_probes)
        };
        prop_assert_eq!(
            run_with(ComputeEngine::Serial),
            run_with(ComputeEngine::Rayon)
        );
    }
}
