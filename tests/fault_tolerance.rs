//! Fault tolerance: BFS under deterministic fault injection must be
//! *transparent* — lossy links and dead ranks change cost, never the
//! answer — and the fault machinery itself must be a strict no-op when
//! disabled.

use bgl_bfs::comm::{OpClass, WireCount};
use bgl_bfs::core::{bfs2d, reference, threaded_run};
use bgl_bfs::{
    BfsConfig, CommError, DistGraph, FaultPlan, GraphSpec, ProcessorGrid, ResilientConfig,
    SimWorld, WirePolicy,
};

/// A `FaultPlan::none()` world is byte-identical to a plain world:
/// same levels, same per-class communication stats, same simulated
/// time to the last bit. The fault layer costs nothing when off.
#[test]
fn none_plan_is_byte_identical_to_no_plan() {
    for (rows, cols, seed) in [(2, 3, 7u64), (4, 4, 42), (1, 4, 9)] {
        let spec = GraphSpec::poisson(4_000, 8.0, seed);
        let grid = ProcessorGrid::new(rows, cols);
        let graph = DistGraph::build(spec, grid);
        let config = BfsConfig::paper_optimized();

        let mut plain = SimWorld::bluegene(grid);
        let a = bfs2d::run(&graph, &mut plain, &config, 1);

        let mut faulty = SimWorld::bluegene(grid).with_fault_plan(FaultPlan::none());
        let b = bfs2d::run(&graph, &mut faulty, &config, 1);

        assert_eq!(a.levels, b.levels);
        assert_eq!(a.stats.comm, b.stats.comm);
        assert_eq!(a.stats.sim_time.to_bits(), b.stats.sim_time.to_bits());
        assert!(!b.stats.comm.faults.any(), "no faults may be counted");
    }
}

/// Lossy exchanges (drops + truncations + duplicates at up to 20%)
/// and a scheduled rank death: the resilient engine still produces the
/// sequential oracle's labels, across seeds and grid shapes.
#[test]
fn recovery_matches_oracle_across_seeds_and_topologies() {
    for (n, k, seed, rows, cols, victim, at) in [
        (3_000u64, 6.0, 11u64, 2usize, 2usize, 3usize, 2u64),
        (3_000, 6.0, 23, 2, 3, 0, 5),
        (5_000, 10.0, 5, 4, 2, 6, 8),
        (2_000, 4.0, 77, 3, 3, 4, 2),
    ] {
        let spec = GraphSpec::poisson(n, k, seed);
        let grid = ProcessorGrid::new(rows, cols);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let oracle = reference::bfs_levels(&adj, 1);

        let plan = FaultPlan::seeded(seed ^ 0x5eed)
            .with_drop_prob(0.2)
            .with_truncate_prob(0.05)
            .with_duplicate_prob(0.05)
            .kill_rank_at(victim, at);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let got = bfs2d::run_resilient(
            &graph,
            &mut world,
            &BfsConfig::baseline_alltoall(),
            1,
            &ResilientConfig::default(),
        )
        .expect("resilient run must survive one death");

        assert_eq!(got.result.levels, oracle, "seed {seed} on {rows}x{cols}");
        assert_eq!(got.recoveries, 1);
        assert_eq!(got.recovered_ranks, vec![victim]);
        assert!(got.recovery_time > 0.0);
        assert!(got.result.stats.comm.faults.drops_injected > 0);
    }
}

/// Without a resilient configuration a rank death is a typed error,
/// not a panic, and it names the dead rank.
#[test]
fn rank_death_surfaces_as_typed_error() {
    let spec = GraphSpec::poisson(2_000, 6.0, 3);
    let grid = ProcessorGrid::new(2, 2);
    let graph = DistGraph::build(spec, grid);
    let plan = FaultPlan::seeded(1).kill_rank_at(2, 3);
    let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
    let err = bfs2d::try_run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 1)
        .expect_err("death must abort the non-resilient run");
    assert_eq!(err, CommError::RankDead { rank: 2 });
}

/// Cross-runtime fault determinism: the superstep simulator and the
/// real one-thread-per-rank runtime see the *same* fault schedule —
/// identical drop/truncation/duplication/retransmission counts — and
/// both still match the sequential oracle.
#[test]
fn sim_and_threaded_runtimes_share_the_fault_schedule() {
    for (seed, fault_seed, rows, cols) in [(31u64, 5u64, 2usize, 2usize), (8, 19, 2, 3)] {
        let spec = GraphSpec::poisson(2_500, 6.0, seed);
        let grid = ProcessorGrid::new(rows, cols);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let oracle = reference::bfs_levels(&adj, 1);
        let plan = FaultPlan::seeded(fault_seed)
            .with_drop_prob(0.15)
            .with_truncate_prob(0.05)
            .with_duplicate_prob(0.05);

        // Threaded runtime: sum per-rank fault counters.
        let outcomes = threaded_run::run_threaded_with_faults(&graph, 1, true, plan.clone());
        let mut threaded_levels = vec![u32::MAX; spec.n as usize];
        let (mut drops, mut truncs, mut dups, mut retrans) = (0u64, 0u64, 0u64, 0u64);
        for outcome in outcomes {
            let o = outcome.expect("lossy-but-alive run must complete");
            for (i, &l) in o.levels.iter().enumerate() {
                threaded_levels[o.owned_start as usize + i] = l;
            }
            drops += o.faults.drops_injected;
            truncs += o.faults.truncations_injected;
            dups += o.faults.duplicates_injected;
            retrans += o.faults.retransmissions;
        }
        assert_eq!(threaded_levels, oracle);

        // Simulator on the same plan: identical schedule, same counts.
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let r = bfs2d::try_run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 1)
            .expect("lossy sim run must complete");
        assert_eq!(r.levels, oracle);
        let f = &r.stats.comm.faults;
        assert_eq!(f.drops_injected, drops, "seed {seed}");
        assert_eq!(f.truncations_injected, truncs, "seed {seed}");
        assert_eq!(f.duplicates_injected, dups, "seed {seed}");
        assert_eq!(f.retransmissions, retrans, "seed {seed}");
        assert!(f.drops_injected > 0, "the plan must actually fire");
    }
}

/// Wire compression composes with fault injection: under a lossy plan
/// both runtimes still match the oracle, they count the *same* faults,
/// and their sender-side byte accounting is identical — retransmission
/// charges extra time, never extra bytes, so logical and wire totals
/// stay a pure function of the payloads.
#[test]
fn wire_codec_composes_with_lossy_links() {
    for (seed, fault_seed, rows, cols) in [(31u64, 5u64, 2usize, 2usize), (8, 19, 2, 3)] {
        let spec = GraphSpec::poisson(2_500, 6.0, seed);
        let grid = ProcessorGrid::new(rows, cols);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let oracle = reference::bfs_levels(&adj, 1);
        let plan = FaultPlan::seeded(fault_seed)
            .with_drop_prob(0.15)
            .with_truncate_prob(0.05)
            .with_duplicate_prob(0.05);

        let outcomes =
            threaded_run::run_threaded_with_wire(&graph, 1, true, plan.clone(), WirePolicy::auto());
        let mut threaded_levels = vec![u32::MAX; spec.n as usize];
        let mut expand = WireCount::default();
        let mut fold = WireCount::default();
        let mut retrans = 0u64;
        for outcome in outcomes {
            let o = outcome.expect("lossy-but-alive run must complete");
            for (i, &l) in o.levels.iter().enumerate() {
                threaded_levels[o.owned_start as usize + i] = l;
            }
            expand.logical_bytes += o.expand_wire.logical_bytes;
            expand.wire_bytes += o.expand_wire.wire_bytes;
            fold.logical_bytes += o.fold_wire.logical_bytes;
            fold.wire_bytes += o.fold_wire.wire_bytes;
            retrans += o.faults.retransmissions;
        }
        assert_eq!(threaded_levels, oracle);

        let mut world = SimWorld::bluegene(grid)
            .with_fault_plan(plan)
            .with_wire_policy(WirePolicy::auto());
        let r = bfs2d::try_run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 1)
            .expect("lossy sim run must complete");
        assert_eq!(r.levels, oracle);
        assert_eq!(r.stats.comm.faults.retransmissions, retrans, "seed {seed}");
        assert!(retrans > 0, "the plan must actually fire");

        let se = r.stats.comm.class(OpClass::Expand);
        let sf = r.stats.comm.class(OpClass::Fold);
        assert_eq!(expand.logical_bytes, se.logical_bytes, "seed {seed}");
        assert_eq!(expand.wire_bytes, se.wire_bytes, "seed {seed}");
        assert_eq!(fold.logical_bytes, sf.logical_bytes, "seed {seed}");
        assert_eq!(fold.wire_bytes, sf.wire_bytes, "seed {seed}");
        assert!(
            expand.wire_bytes + fold.wire_bytes < expand.logical_bytes + fold.logical_bytes,
            "the codec must still pay under faults"
        );
    }
}

/// Wire compression composes with checkpoint/recovery: a rank death
/// under a lossy plan with the codec on still recovers to the oracle's
/// labels, and the surviving run's traffic is genuinely compressed.
#[test]
fn recovery_with_wire_codec_matches_oracle() {
    let spec = GraphSpec::poisson(3_000, 6.0, 23);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let adj = bgl_bfs::graph::dist::adjacency(&spec);
    let oracle = reference::bfs_levels(&adj, 1);

    let plan = FaultPlan::seeded(0x5eed)
        .with_drop_prob(0.2)
        .with_truncate_prob(0.05)
        .with_duplicate_prob(0.05)
        .kill_rank_at(0, 5);
    let mut world = SimWorld::bluegene(grid)
        .with_fault_plan(plan)
        .with_wire_policy(WirePolicy::auto());
    let got = bfs2d::run_resilient(
        &graph,
        &mut world,
        &BfsConfig::baseline_alltoall(),
        1,
        &ResilientConfig::default(),
    )
    .expect("resilient run must survive one death with the codec on");

    assert_eq!(got.result.levels, oracle);
    assert_eq!(got.recoveries, 1);
    assert!(got.result.stats.comm.faults.drops_injected > 0);
    let comm = &got.result.stats.comm;
    assert!(comm.total_wire_bytes() < comm.total_logical_bytes());
    assert!(comm.compression_ratio() > 1.5, "expected real compression");
}

/// Checkpoint cadence is behaviour-neutral: any `checkpoint_every`
/// recovers to the same labels, and a fault-free resilient run matches
/// the plain engine exactly.
#[test]
fn checkpoint_cadence_does_not_change_the_answer() {
    let spec = GraphSpec::poisson(3_000, 8.0, 13);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let config = BfsConfig::baseline_alltoall();
    let mut plain_world = SimWorld::bluegene(grid);
    let plain = bfs2d::run(&graph, &mut plain_world, &config, 1);

    for every in [1u32, 2, 3] {
        let plan = FaultPlan::seeded(9).kill_rank_at(5, 7);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let rc = ResilientConfig {
            checkpoint_every: every,
            ..ResilientConfig::default()
        };
        let got = bfs2d::run_resilient(&graph, &mut world, &config, 1, &rc)
            .expect("must recover at any cadence");
        assert_eq!(
            got.result.levels, plain.levels,
            "checkpoint_every = {every}"
        );
        assert_eq!(got.recoveries, 1);
    }

    // Fault-free resilient run: same labels, zero recoveries.
    let mut world = SimWorld::bluegene(grid);
    let got = bfs2d::run_resilient(&graph, &mut world, &config, 1, &ResilientConfig::default())
        .expect("fault-free resilient run cannot fail");
    assert_eq!(got.result.levels, plain.levels);
    assert_eq!(got.recoveries, 0);
    assert_eq!(got.recovery_time, 0.0);
}

/// The same fault plan (lossy links + a buddy-pair death split across
/// parity groups) under every wire codec × compute engine: all eight
/// cells recover through parity reconstruction and land bit-identical
/// to the sequential oracle, with identical fault counters — the
/// delivery hash is payload-independent, so the codec cannot perturb
/// the fault schedule. Within a wire mode, serial and rayon agree to
/// the last bit of simulated time.
#[test]
fn resilient_runs_are_bit_identical_across_wires_and_engines() {
    use bgl_bfs::core::ComputeEngine;
    use bgl_bfs::WireMode;

    let spec = GraphSpec::poisson(4_000, 6.0, 31);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let adj = bgl_bfs::graph::dist::adjacency(&spec);
    let oracle = reference::bfs_levels(&adj, 0);
    let plan = FaultPlan::seeded(0xfade)
        .with_drop_prob(0.15)
        .kill_rank_at(2, 4)
        .kill_rank_at(3, 4);
    let resilient = ResilientConfig {
        parity_group_size: 3, // ranks 2 and 3 straddle the group boundary
        ..ResilientConfig::default()
    };

    let mut cells = Vec::new();
    for wire in [
        WireMode::Raw,
        WireMode::Auto,
        WireMode::Delta,
        WireMode::Bitmap,
    ] {
        for engine in [ComputeEngine::Serial, ComputeEngine::Rayon] {
            let mut world = SimWorld::bluegene(grid)
                .with_fault_plan(plan.clone())
                .with_wire_policy(WirePolicy::with_mode(wire));
            let config = BfsConfig::paper_optimized().with_engine(engine);
            let got = bfs2d::run_resilient(&graph, &mut world, &config, 0, &resilient)
                .unwrap_or_else(|e| panic!("{wire:?}/{engine:?} must survive: {e}"));
            assert_eq!(got.result.levels, oracle, "{wire:?}/{engine:?}");
            assert_eq!(got.recoveries, 2, "{wire:?}/{engine:?}");
            assert_eq!(got.degraded_restarts, 0, "{wire:?}/{engine:?}");
            assert_eq!(got.recovered_ranks, vec![2, 3], "{wire:?}/{engine:?}");
            cells.push((wire, got));
        }
    }

    // Fault counters agree across every cell (payload-independent hash).
    let f0 = cells[0].1.result.stats.comm.faults;
    for (wire, got) in &cells {
        assert_eq!(got.result.stats.comm.faults, f0, "{wire:?}");
    }
    // Within a wire mode, engines are fully bit-identical.
    for pair in cells.chunks(2) {
        let (w, a) = &pair[0];
        let (_, b) = &pair[1];
        assert_eq!(a.result.stats.comm, b.result.stats.comm, "{w:?}");
        assert_eq!(
            a.result.stats.sim_time.to_bits(),
            b.result.stats.sim_time.to_bits(),
            "{w:?}"
        );
        assert_eq!(
            a.recovery_time.to_bits(),
            b.recovery_time.to_bits(),
            "{w:?}"
        );
    }
}

/// Recovery traffic is not exempt from faults: making the control
/// channel lossy leaves the answer and the data-fault schedule intact
/// but adds control-class retransmissions and communication time —
/// the recovery protocol pays for its own redelivery.
#[test]
fn recovery_traffic_pays_for_faults_on_the_control_channel() {
    let spec = GraphSpec::poisson(4_000, 6.0, 13);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let adj = bgl_bfs::graph::dist::adjacency(&spec);
    let oracle = reference::bfs_levels(&adj, 0);
    let resilient = ResilientConfig {
        parity_group_size: 3,
        ..ResilientConfig::default()
    };

    let run = |plan: FaultPlan| {
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let got = bfs2d::run_resilient(
            &graph,
            &mut world,
            &BfsConfig::paper_optimized(),
            0,
            &resilient,
        )
        .expect("one death per group must recover");
        let control_time = world.comm_time_for(OpClass::Control);
        (got, control_time)
    };

    let clean = FaultPlan::seeded(0xc0de).kill_rank_at(1, 4);
    let lossy = FaultPlan::seeded(0xc0de)
        .kill_rank_at(1, 4)
        .with_control_drop_prob(0.5)
        .with_control_duplicate_prob(0.2);

    let (a, a_control) = run(clean);
    let (b, b_control) = run(lossy);

    assert_eq!(a.result.levels, oracle);
    assert_eq!(b.result.levels, oracle);
    assert_eq!(a.recoveries, 1);
    assert_eq!(b.recoveries, 1);
    // Recovery shipped parity logs over the control class in both runs.
    assert!(
        a_control > 0.0,
        "recovery traffic must be charged to Control"
    );
    // The lossy control channel forced retransmissions the clean one
    // did not need, and they cost simulated time.
    let fa = a.result.stats.comm.faults;
    let fb = b.result.stats.comm.faults;
    assert!(
        fb.retransmissions > fa.retransmissions,
        "control drops must surface as retransmissions ({} vs {})",
        fb.retransmissions,
        fa.retransmissions
    );
    assert!(
        b_control > a_control,
        "redelivery must be charged to Control time"
    );
    // The data exchanges are untouched: the control channel has its own
    // round counter, so the vertices moved per rank are identical.
    assert_eq!(
        a.result.stats.comm.received_per_rank,
        b.result.stats.comm.received_per_rank
    );
}
