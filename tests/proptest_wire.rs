//! Property-based checks on the wire codec (`bgl_comm::wire`): every
//! frame decodes back to exactly the payload it encoded, the declared
//! [`WireMeasure`] is the exact frame length, and the adaptive chooser
//! never ships more than the raw vertex list plus its declared header
//! bound.

use bgl_bfs::comm::wire::{self, HEADER_BOUND};
use bgl_bfs::comm::VERT_BYTES;
use bgl_bfs::{WireMode, WirePolicy};
use proptest::prelude::*;

fn any_mode() -> impl Strategy<Value = WireMode> {
    prop_oneof![
        Just(WireMode::Raw),
        Just(WireMode::Delta),
        Just(WireMode::Bitmap),
        Just(WireMode::Auto),
    ]
}

/// Sorted, deduplicated vertex sets — the shape every BFS exchange
/// actually ships. Values are folded into a bounded range so bitmap
/// framing gets exercised at many densities.
fn sorted_set(max_len: usize, span: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..span, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode is the identity on sorted vertex sets, under
    /// every mode and several density regimes.
    #[test]
    fn roundtrip_on_sorted_sets(
        payload in sorted_set(300, 100_000),
        mode in any_mode(),
        shift in 0u32..10,
    ) {
        let policy = WirePolicy {
            mode,
            density_shift: shift,
            ..WirePolicy::auto()
        };
        let frame = wire::encode(&payload, &policy);
        prop_assert_eq!(wire::decode(&frame), Some(payload));
    }

    /// Dense sets (small span) push the chooser into bitmap/RLE frames;
    /// the roundtrip must still be exact.
    #[test]
    fn roundtrip_on_dense_sets(
        payload in sorted_set(300, 512),
        mode in any_mode(),
    ) {
        let policy = WirePolicy::with_mode(mode);
        let frame = wire::encode(&payload, &policy);
        prop_assert_eq!(wire::decode(&frame), Some(payload));
    }

    /// The codec tolerates arbitrary (unsorted, duplicated) payloads by
    /// falling back to list frames — decode is still exact, order and
    /// multiplicity preserved.
    #[test]
    fn roundtrip_on_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u64>(), 0..120),
        mode in any_mode(),
    ) {
        let policy = WirePolicy::with_mode(mode);
        let frame = wire::encode(&payload, &policy);
        prop_assert_eq!(wire::decode(&frame), Some(payload));
    }

    /// `measure` predicts the exact encoded frame length, and its
    /// logical size is always `count * VERT_BYTES`.
    #[test]
    fn measure_is_exact(
        payload in sorted_set(300, 20_000),
        mode in any_mode(),
    ) {
        let policy = WirePolicy::with_mode(mode);
        let m = wire::measure(&payload, &policy);
        prop_assert_eq!(m.logical_bytes, payload.len() as u64 * VERT_BYTES);
        if policy.is_raw() {
            // Codec off: no framing at all, wire == logical.
            prop_assert_eq!(m.wire_bytes, m.logical_bytes);
        } else {
            prop_assert_eq!(m.wire_bytes, wire::encode(&payload, &policy).len() as u64);
        }
    }

    /// The adaptive chooser never exceeds the raw vertex list by more
    /// than the declared `HEADER_BOUND`, on any payload whatsoever.
    #[test]
    fn auto_never_beats_raw_by_more_than_header(
        payload in proptest::collection::vec(any::<u64>(), 0..200),
        shift in 0u32..10,
        min_len in 0usize..64,
    ) {
        let policy = WirePolicy {
            mode: WireMode::Auto,
            density_shift: shift,
            min_bitmap_len: min_len,
        };
        let m = wire::measure(&payload, &policy);
        prop_assert!(m.wire_bytes <= m.logical_bytes + HEADER_BOUND);
    }
}
