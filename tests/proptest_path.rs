//! Property-based checks on the lane-masked batched path walk
//! (`bfs_core::path::multi`): on random graphs, grids, and target
//! batches (duplicates and unreached targets included), every lane of a
//! batched walk is byte-identical to its standalone `extract_path`,
//! whichever host engine built the level array and whichever wire codec
//! carries the rounds — and lossy control rounds (drops + duplicates)
//! retry without changing a single extracted path.

use bgl_bfs::core::{bfs2d, path, BfsConfig, ComputeEngine};
use bgl_bfs::{DistGraph, FaultPlan, GraphSpec, ProcessorGrid, SimWorld, WirePolicy};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Family {
    Poisson,
    Rmat,
}

fn any_engine() -> impl Strategy<Value = ComputeEngine> {
    prop_oneof![
        Just(ComputeEngine::Serial),
        Just(ComputeEngine::Rayon),
        Just(ComputeEngine::Auto),
    ]
}

fn any_wire() -> impl Strategy<Value = WirePolicy> {
    prop_oneof![Just(WirePolicy::raw()), Just(WirePolicy::auto())]
}

fn any_family() -> impl Strategy<Value = Family> {
    prop_oneof![Just(Family::Poisson), Just(Family::Rmat)]
}

/// Small random instances: n in the hundreds keeps a proptest case in
/// the low milliseconds while still crossing rank boundaries on every
/// grid shape. Sparse Poisson families routinely leave vertices
/// unreached, exercising the never-activated lanes.
fn instance() -> impl Strategy<Value = (GraphSpec, ProcessorGrid)> {
    (
        any_family(),
        200u64..900,
        2.0f64..8.0,
        0u64..1_000,
        1usize..4,
        1usize..4,
    )
        .prop_map(|(family, n, k, seed, rows, cols)| {
            let spec = match family {
                Family::Poisson => GraphSpec::poisson(n, k, seed),
                Family::Rmat => GraphSpec::rmat(n, k, seed),
            };
            (spec, ProcessorGrid::new(rows, cols))
        })
}

/// 1..=8 targets, drawn with replacement so duplicate-target batches
/// (two lanes walking the same downhill chain) are exercised; the
/// source itself may be drawn, exercising trivial lanes.
fn targets(n_max: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..n_max, 1..=8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched lanes ≡ standalone extractions, across engines × wires.
    #[test]
    fn lanes_equal_standalone_extractions(
        (spec, grid) in instance(),
        source in 0u64..200,
        tgts in targets(200),
        engine in any_engine(),
        wire in any_wire(),
    ) {
        let source = source % spec.n;
        let tgts: Vec<u64> = tgts.into_iter().map(|t| t % spec.n).collect();
        let graph = DistGraph::build(spec, grid);
        let mut bfs_world = SimWorld::bluegene(grid).with_wire_policy(wire);
        let levels = bfs2d::run(
            &graph,
            &mut bfs_world,
            &BfsConfig::paper_optimized().with_engine(engine),
            source,
        )
        .levels;

        let mut world = SimWorld::bluegene(grid).with_wire_policy(wire);
        let r = path::multi(&graph, &mut world, &levels, source, &tgts);
        prop_assert_eq!(r.paths.len(), tgts.len());
        prop_assert_eq!(r.rounds, 3 * u64::from(r.hops), "three rounds per hop");
        for (lane, &t) in tgts.iter().enumerate() {
            let mut w = SimWorld::bluegene(grid).with_wire_policy(wire);
            let single = path::extract_path(&graph, &mut w, &levels, source, t);
            prop_assert_eq!(
                &r.paths[lane],
                &single,
                "lane {} (target {}) diverged", lane, t
            );
        }
    }

    /// Lossy control rounds (drops and duplicates) are retried away:
    /// the faulty-world walk returns exactly the clean-world paths.
    #[test]
    fn lossy_control_rounds_leave_paths_unchanged(
        (spec, grid) in instance(),
        source in 0u64..200,
        tgts in targets(200),
        fault_seed in 0u64..1_000,
        drop in 0.05f64..0.4,
        dup in 0.0f64..0.2,
    ) {
        let source = source % spec.n;
        let tgts: Vec<u64> = tgts.into_iter().map(|t| t % spec.n).collect();
        let graph = DistGraph::build(spec, grid);
        let mut clean = SimWorld::bluegene(grid);
        let levels = bfs2d::run(&graph, &mut clean, &BfsConfig::paper_optimized(), source).levels;
        let want = path::multi(&graph, &mut clean, &levels, source, &tgts).paths;

        let plan = FaultPlan::seeded(fault_seed)
            .with_control_drop_prob(drop)
            .with_control_duplicate_prob(dup);
        let mut faulty = SimWorld::bluegene(grid)
            .with_fault_plan(plan)
            .with_faulty_control();
        let config = path::MultiPathConfig { retry_attempts: 16 };
        let got = path::try_multi(&graph, &mut faulty, &levels, source, &tgts, &config)
            .expect("retries ride out lossy control rounds");
        prop_assert_eq!(got.paths, want, "faults must not change extracted paths");
    }
}
