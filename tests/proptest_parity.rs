//! Property-based checks on the parity-group checkpoint shards
//! (`bfs_core::parity`): for arbitrary group sizes, member counts, and
//! interleaved append-only delta logs, XOR-ing the survivors' logs out
//! of the group shard reconstructs any single member's log exactly.

use bgl_bfs::comm::Vert;
use bgl_bfs::{GroupShard, ParityGroups};
use proptest::prelude::*;

/// SplitMix64 — deterministic pseudo-random words for synthetic logs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Build each member's append-only log as a sequence of entries with
/// seeded contents, lengths drawn from `entry_lens`.
fn synth_logs(members: usize, seed: u64, entry_lens: &[usize]) -> Vec<Vec<Vert>> {
    let mut logs = vec![Vec::new(); members];
    for (i, &len) in entry_lens.iter().enumerate() {
        let member = mix(seed ^ (i as u64).rotate_left(17)) as usize % members;
        for j in 0..len {
            logs[member].push(mix(seed ^ ((i * 131 + j) as u64)));
        }
    }
    logs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Absorbing interleaved entries and then XOR-ing out the other
    /// members' full logs recovers every member's log bit-for-bit,
    /// for arbitrary member counts and log shapes.
    #[test]
    fn shard_reconstructs_every_member(
        members in 2usize..7,
        seed in any::<u64>(),
        entry_lens in proptest::collection::vec(0usize..9, 0..24),
    ) {
        let mut shard = GroupShard::new(members);
        let mut logs = vec![Vec::new(); members];
        // Interleave absorption the way the engine does: one entry per
        // (level, member) event, in arrival order.
        for (i, &len) in entry_lens.iter().enumerate() {
            let member = mix(seed ^ (i as u64).rotate_left(17)) as usize % members;
            let entry: Vec<Vert> =
                (0..len).map(|j| mix(seed ^ ((i * 131 + j) as u64))).collect();
            shard.absorb(member, &entry);
            logs[member].extend_from_slice(&entry);
        }
        prop_assert_eq!(logs, synth_logs(members, seed, &entry_lens));
        let logs = synth_logs(members, seed, &entry_lens);
        for dead in 0..members {
            let survivors: Vec<(usize, &[Vert])> = (0..members)
                .filter(|&m| m != dead)
                .map(|m| (m, logs[m].as_slice()))
                .collect();
            prop_assert_eq!(
                shard.reconstruct(dead, &survivors),
                logs[dead].clone(),
                "member {} of {}", dead, members
            );
        }
    }

    /// The group layout partitions ranks: every rank belongs to exactly
    /// one group, member indices are consistent, and the last group
    /// absorbs the remainder so no rank is left uncovered.
    #[test]
    fn groups_partition_the_ranks(
        g in 2usize..9,
        p in 1usize..40,
    ) {
        let groups = ParityGroups::new(g, p);
        let mut seen = vec![false; p];
        for group in 0..groups.count() {
            for rank in groups.members(group) {
                prop_assert!(!seen[rank], "rank {} covered twice", rank);
                seen[rank] = true;
                prop_assert_eq!(groups.group_of(rank), group);
                let mi = groups.member_index(rank);
                prop_assert_eq!(groups.members(group).nth(mi), Some(rank));
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some rank uncovered");
    }

    /// Shard state is order-insensitive at reconstruction time: the
    /// survivors slice can arrive in any rotation and the dead
    /// member's log still comes back exactly.
    #[test]
    fn reconstruction_ignores_survivor_order(
        members in 3usize..6,
        seed in any::<u64>(),
        rotation in 0usize..5,
        entry_lens in proptest::collection::vec(1usize..6, 1..12),
    ) {
        let logs = synth_logs(members, seed, &entry_lens);
        let mut shard = GroupShard::new(members);
        // Absorb member-by-member (a different interleaving than the
        // logs were generated with — shards must not care).
        for (m, log) in logs.iter().enumerate() {
            if !log.is_empty() {
                shard.absorb(m, log);
            }
        }
        let dead = mix(seed) as usize % members;
        let mut survivors: Vec<(usize, &[Vert])> = (0..members)
            .filter(|&m| m != dead)
            .map(|m| (m, logs[m].as_slice()))
            .collect();
        let by = rotation % survivors.len();
        survivors.rotate_left(by);
        prop_assert_eq!(shard.reconstruct(dead, &survivors), logs[dead].clone());
    }
}
