//! Workload replay round-trip: a Poisson run's recorded arrival
//! schedule, replayed through `ArrivalProcess::Replay`, drives the
//! server to a byte-identical `SERVER_summary.json`. This is the
//! ROADMAP "workload replay" item — re-run an interesting arrival
//! trace without re-rolling the dice — and it only holds because every
//! other input (graph, workload, simulated clock) is already seeded.

use bgl_bfs::server::ArrivalProcess;
use bgl_bfs::{
    BglServer, DistGraph, GraphSpec, ProcessorGrid, ServerConfig, SimWorld, WorkloadSpec,
};

fn serve_summary(schedule: &[usize]) -> String {
    let spec = GraphSpec::poisson(3_000, 6.0, 11);
    let grid = ProcessorGrid::new(2, 2);
    let graph = DistGraph::build(spec, grid);
    let world = SimWorld::bluegene(grid);
    let mut srv = BglServer::new(graph, world, ServerConfig::default());
    let workload = WorkloadSpec::zipf(48, 5).generate(spec.n);
    let mut pending = workload.into_iter();
    for &count in schedule {
        for q in pending.by_ref().take(count) {
            srv.submit(q).expect("queue sized for the test workload");
        }
        srv.pump();
    }
    srv.run_to_completion();
    srv.summary_json()
}

#[test]
fn poisson_schedule_replays_to_identical_summary() {
    let poisson = ArrivalProcess::Poisson { mean: 2.5 };
    let recorded = poisson.schedule(48, 17);

    // Record → text → parse, as `serve --arrival-record/--arrival-replay` does.
    let text = ArrivalProcess::schedule_to_text(&recorded);
    let replay = ArrivalProcess::replay_from_text(&text).expect("recorded schedule parses");
    let replayed = replay.schedule(48, 0); // seed ignored on replay
    assert_eq!(replayed, recorded, "replay must follow the recording");

    let original = serve_summary(&recorded);
    let again = serve_summary(&replayed);
    assert_eq!(
        original, again,
        "replaying the recorded schedule must reproduce SERVER_summary.json byte-for-byte"
    );
}

#[test]
fn different_seeds_change_the_summary_but_replay_pins_it() {
    let poisson = ArrivalProcess::Poisson { mean: 1.5 };
    let a = poisson.schedule(48, 1);
    let b = poisson.schedule(48, 2);
    assert_ne!(a, b, "distinct seeds should draw distinct schedules");
    // Replay of schedule `a` matches a fresh serve of `a`, not of `b`.
    let replay = ArrivalProcess::replay_from_text(&ArrivalProcess::schedule_to_text(&a))
        .expect("parses")
        .schedule(48, 777);
    assert_eq!(serve_summary(&replay), serve_summary(&a));
}
