//! Chaos fuzzing of the parity-group recovery engine: seeded
//! randomized fault schedules ([`ChaosSpec`]) crossed with the wire
//! codec and compute-engine matrix. Every surviving run must be
//! bit-identical to the fault-free reference and pass the
//! Graph500-style validator; runs that cannot survive must fail with
//! a typed [`CommError`], never a panic.

use bgl_bfs::core::{bfs2d, validate, ComputeEngine};
use bgl_bfs::torus::MachineConfig;
use bgl_bfs::{
    BfsConfig, ChaosSpec, DistGraph, FaultPlan, GraphSpec, ProcessorGrid, ResilientConfig,
    SimWorld, WireMode, WirePolicy,
};

const GROUP: usize = 3;

fn build(n: u64, grid: ProcessorGrid) -> (GraphSpec, DistGraph) {
    let spec = GraphSpec::poisson(n, 6.0, 42);
    (spec, DistGraph::build(spec, grid))
}

fn reference(graph: &DistGraph) -> Vec<u32> {
    let mut world = SimWorld::bluegene(graph.grid());
    bfs2d::run(graph, &mut world, &BfsConfig::paper_optimized(), 0).levels
}

/// Seeded chaos schedules (deaths + lossy messaging) across
/// {raw, auto} × {serial, rayon}: every cell recovers through parity
/// reconstruction (no degraded restarts — chaos schedules at most one
/// death per group), lands bit-identical to the fault-free reference,
/// and passes Graph500-style validation.
#[test]
fn chaos_matrix_recovers_bit_identically_and_validates() {
    let grid = ProcessorGrid::new(2, 3);
    let (spec, graph) = build(4_000, grid);
    let want = reference(&graph);
    let resilient = ResilientConfig {
        parity_group_size: GROUP,
        ..ResilientConfig::default()
    };
    for fault_seed in [11u64, 12, 13] {
        let chaos = ChaosSpec::moderate(fault_seed, grid.len(), GROUP);
        let plan = FaultPlan::chaos(&chaos);
        for wire in [WireMode::Raw, WireMode::Auto] {
            for engine in [ComputeEngine::Serial, ComputeEngine::Rayon] {
                let mut world = SimWorld::bluegene(grid)
                    .with_fault_plan(plan.clone())
                    .with_wire_policy(WirePolicy::with_mode(wire));
                let config = BfsConfig::paper_optimized().with_engine(engine);
                let got = bfs2d::run_resilient(&graph, &mut world, &config, 0, &resilient)
                    .unwrap_or_else(|e| {
                        panic!("seed {fault_seed} {wire:?}/{engine:?} must survive: {e}")
                    });
                assert_eq!(
                    got.result.levels, want,
                    "seed {fault_seed} {wire:?}/{engine:?} diverged"
                );
                assert_eq!(
                    got.degraded_restarts, 0,
                    "single-death-per-group schedules must parity-recover \
                     (seed {fault_seed} {wire:?}/{engine:?})"
                );
                assert_eq!(got.recoveries as usize, plan.deaths().len());
                let report = validate::validate_against_spec(&spec, &got.result.levels, 0)
                    .unwrap_or_else(|e| panic!("seed {fault_seed}: validation failed: {e}"));
                assert_eq!(report.reached, got.result.stats.reached);
            }
        }
    }
}

/// With dead-link chaos enabled on the underlying torus, runs either
/// survive (bit-identical + validated) or surface a typed error — the
/// engine never panics on an unsurvivable schedule.
#[test]
fn chaos_with_link_faults_survives_or_fails_typed() {
    let grid = ProcessorGrid::new(2, 3);
    let (spec, graph) = build(3_000, grid);
    let want = reference(&graph);
    let dims = MachineConfig::fit_partition(grid.len());
    let resilient = ResilientConfig {
        parity_group_size: GROUP,
        ..ResilientConfig::default()
    };
    let mut survived = 0;
    for fault_seed in 21u64..27 {
        let chaos = ChaosSpec::moderate(fault_seed, grid.len(), GROUP).with_link_faults(dims, 1.0);
        let plan = FaultPlan::chaos(&chaos);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let config = BfsConfig::paper_optimized();
        match bfs2d::run_resilient(&graph, &mut world, &config, 0, &resilient) {
            Ok(got) => {
                assert_eq!(got.result.levels, want, "seed {fault_seed} diverged");
                validate::validate_against_spec(&spec, &got.result.levels, 0)
                    .unwrap_or_else(|e| panic!("seed {fault_seed}: validation failed: {e}"));
                survived += 1;
            }
            Err(e) => {
                // Typed, printable, and specific — the contract for
                // unsurvivable schedules.
                assert!(!e.to_string().is_empty());
            }
        }
    }
    assert!(
        survived > 0,
        "detour routing should carry at least one dead-link schedule to completion"
    );
}

/// The validator is load-bearing: corrupting a single level in an
/// otherwise-correct labelling is caught.
#[test]
fn validator_rejects_a_corrupted_labelling() {
    let grid = ProcessorGrid::new(2, 2);
    let (spec, graph) = build(2_000, grid);
    let mut levels = reference(&graph);
    validate::validate_against_spec(&spec, &levels, 0).expect("reference must validate");
    let victim = levels
        .iter()
        .position(|&l| l != bgl_bfs::core::UNREACHED && l > 1)
        .expect("graph has depth > 1");
    levels[victim] += 2;
    assert!(validate::validate_against_spec(&spec, &levels, 0).is_err());
}
