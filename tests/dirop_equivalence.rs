//! Direction-optimizing BFS cross-validation: the adaptive top-down /
//! bottom-up switch must never change the per-vertex levels — only how
//! much work it takes to compute them. Checked across compute engines,
//! wire codecs, both runtimes, and under injected faults.

use bgl_bfs::comm::FaultPlan;
use bgl_bfs::core::{bfs2d, threaded_run, validate, ComputeEngine, LevelDirection};
use bgl_bfs::{
    BfsConfig, DirectionPolicy, DistGraph, GraphSpec, ProcessorGrid, ResilientConfig, SimWorld,
    WireMode, WirePolicy,
};
use proptest::prelude::*;

/// Reassemble global levels and the per-level direction vector from
/// per-rank threaded outcomes (every rank must report the same vector —
/// the decision is a pure function of allreduced counts).
fn gather_threaded(
    graph: &DistGraph,
    outs: Vec<Result<threaded_run::RankOutcome, bgl_bfs::CommError>>,
) -> (Vec<u32>, Vec<LevelDirection>) {
    let mut levels = vec![u32::MAX; graph.spec.n as usize];
    let mut directions: Option<Vec<LevelDirection>> = None;
    for out in outs {
        let out = out.expect("fault-free run");
        let s = out.owned_start as usize;
        levels[s..s + out.levels.len()].copy_from_slice(&out.levels);
        match &directions {
            None => directions = Some(out.directions.clone()),
            Some(d) => assert_eq!(d, &out.directions, "ranks disagreed on direction"),
        }
    }
    (levels, directions.unwrap_or_default())
}

/// The tentpole equivalence matrix: direction-optimized levels are
/// bit-identical to the pure top-down run across {serial, rayon} ×
/// {raw, auto, bitmap} wire modes, and the adaptive run really does
/// switch (otherwise the matrix tests nothing).
#[test]
fn adaptive_is_bit_identical_across_engines_and_wire_modes() {
    let spec = GraphSpec::rmat(8_000, 12.0, 99);
    let grid = ProcessorGrid::new(3, 4);
    let graph = DistGraph::build(spec, grid);

    let mut world = SimWorld::bluegene(grid);
    let reference = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);

    for engine in [ComputeEngine::Serial, ComputeEngine::Rayon] {
        for mode in [WireMode::Raw, WireMode::Auto, WireMode::Bitmap] {
            let config = BfsConfig::direction_optimized().with_engine(engine);
            let mut world = SimWorld::bluegene(grid).with_wire_policy(WirePolicy::with_mode(mode));
            let r = bfs2d::run(&graph, &mut world, &config, 0);
            assert_eq!(
                r.levels, reference.levels,
                "levels diverged under {engine:?} / {mode:?}"
            );
            let (_, bu) = r.stats.direction_split();
            assert!(
                bu > 0,
                "adaptive run never went bottom-up ({engine:?}/{mode:?})"
            );
            assert!(
                r.stats.total_probes() < reference.stats.total_probes(),
                "bottom-up levels must reduce hash probes ({engine:?}/{mode:?})"
            );
        }
    }
}

/// Serial and rayon bottom-up discover kernels are bit-identical all
/// the way down: same per-level stats and the same simulated clock.
#[test]
fn rayon_bottom_up_kernel_is_bit_identical_to_serial() {
    let spec = GraphSpec::rmat(6_000, 10.0, 17);
    let grid = ProcessorGrid::new(2, 4);
    let graph = DistGraph::build(spec, grid);
    let run = |engine: ComputeEngine| {
        let config = BfsConfig::direction_optimized().with_engine(engine);
        let mut world = SimWorld::bluegene(grid).with_wire_policy(WirePolicy::auto());
        bfs2d::run(&graph, &mut world, &config, 0)
    };
    let serial = run(ComputeEngine::Serial);
    let rayon = run(ComputeEngine::Rayon);
    assert_eq!(serial.levels, rayon.levels);
    assert_eq!(serial.stats.levels, rayon.stats.levels);
    assert_eq!(serial.stats.comm, rayon.stats.comm);
    assert_eq!(
        serial.stats.sim_time.to_bits(),
        rayon.stats.sim_time.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bottom-up discover equals top-down discover on arbitrary
    /// frontiers: forcing every level bottom-up walks the same level
    /// sets as pure top-down on arbitrary graphs, grids, and sent-cache
    /// settings (each level of the walk hands the kernel an arbitrary
    /// frontier shape).
    #[test]
    fn forced_bottom_up_equals_top_down(
        n in 60u64..300,
        k in 1u32..10,
        seed in 0u64..500,
        r in 1usize..4,
        c in 1usize..4,
        sent in any::<bool>(),
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let run = |direction: DirectionPolicy| {
            let config = BfsConfig {
                sent_neighbors: sent,
                ..BfsConfig::paper_optimized()
            }
            .with_direction(direction);
            let mut world = SimWorld::bluegene(grid);
            bfs2d::run(&graph, &mut world, &config, 0)
        };
        let td = run(DirectionPolicy::top_down());
        let bu = run(DirectionPolicy::bottom_up());
        let adaptive = run(DirectionPolicy::adaptive());
        prop_assert_eq!(&td.levels, &bu.levels);
        prop_assert_eq!(&td.levels, &adaptive.levels);
    }

    /// The simulator and the one-thread-per-rank runtime make the same
    /// per-level direction choice and produce the same labels — the
    /// switch is a pure function of the allreduced counts, so neither
    /// runtime can drift.
    #[test]
    fn threaded_and_simulator_switch_identically(
        n in 100u64..400,
        k in 4u32..12,
        seed in 0u64..500,
        r in 1usize..4,
        c in 1usize..4,
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);

        let outs = threaded_run::run_threaded_direction(
            &graph, 0, true, FaultPlan::none(), WirePolicy::auto(), DirectionPolicy::adaptive(),
        );
        let (levels, directions) = gather_threaded(&graph, outs);

        let config = BfsConfig {
            sent_neighbors: true,
            ..BfsConfig::baseline_alltoall()
        }
        .with_direction(DirectionPolicy::adaptive());
        let mut world = SimWorld::bluegene(grid).with_wire_policy(WirePolicy::auto());
        let sim = bfs2d::run(&graph, &mut world, &config, 0);
        prop_assert_eq!(levels, sim.levels);
        let sim_dirs: Vec<LevelDirection> =
            sim.stats.levels.iter().map(|l| l.direction).collect();
        prop_assert_eq!(directions, sim_dirs);
    }
}

/// Chaos case: a direction-optimized search that loses messages AND a
/// rank mid-run parity-recovers to the exact fault-free labelling and
/// passes the Graph500 validator.
#[test]
fn faulty_direction_optimized_run_recovers_and_validates() {
    let spec = GraphSpec::rmat(6_000, 10.0, 23);
    let grid = ProcessorGrid::new(2, 4);
    let graph = DistGraph::build(spec, grid);

    let mut world = SimWorld::bluegene(grid);
    let clean = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);

    let plan = FaultPlan::seeded(0xd1f)
        .with_drop_prob(0.1)
        .kill_rank_at(5, 3);
    let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
    let config = BfsConfig::direction_optimized();
    let resilient = ResilientConfig {
        parity_group_size: 4,
        ..ResilientConfig::default()
    };
    let res = bfs2d::run_resilient(&graph, &mut world, &config, 0, &resilient)
        .expect("single death must recover");
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.result.levels, clean.levels);
    let report = validate::validate_against_spec(&graph.spec, &res.result.levels, 0)
        .expect("recovered direction-optimized run must validate");
    assert!(report.reached > 1);
}
