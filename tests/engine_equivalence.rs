//! Engine cross-validation: the superstep simulator and the real
//! one-thread-per-rank message-passing runtime must produce identical
//! BFS labels — the evidence that simulated message routing is faithful.

use bgl_bfs::core::{bfs2d, bidir, threaded_run, ComputeEngine};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_and_threads_agree(
        n in 60u64..300,
        k in 1u32..10,
        seed in 0u64..500,
        r in 1usize..4,
        c in 1usize..4,
        sent in any::<bool>(),
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);

        let threaded = threaded_run::run_threaded(&graph, 0, sent);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            sent_neighbors: sent,
            ..BfsConfig::baseline_alltoall()
        };
        let sim = bfs2d::run(&graph, &mut world, &config, 0);
        prop_assert_eq!(threaded, sim.levels);
    }
}

#[test]
fn engines_agree_on_wide_grid() {
    // More ranks than a proptest case would spawn: 24 threads.
    let spec = GraphSpec::poisson(2_000, 8.0, 77);
    let grid = ProcessorGrid::new(4, 6);
    let graph = DistGraph::build(spec, grid);
    let threaded = threaded_run::run_threaded(&graph, 19, true);
    let mut world = SimWorld::bluegene(grid);
    let sim = bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 19);
    assert_eq!(threaded, sim.levels);
}

#[test]
fn rayon_compute_engine_is_bit_identical_to_serial() {
    // The host-side rayon fan-out must never leak into results: labels,
    // per-level stats, message counters, and all three simulated clocks
    // are bit-for-bit those of the serial engine, for every strategy.
    use bgl_bfs::core::{ExpandStrategy, FoldStrategy};
    let spec = GraphSpec::poisson(1_200, 8.0, 29);
    let grid = ProcessorGrid::new(3, 4);
    let graph = DistGraph::build(spec, grid);
    for fold in [
        FoldStrategy::DirectAllToAll,
        FoldStrategy::ReduceScatterUnion,
        FoldStrategy::TwoPhaseRing,
    ] {
        let run = |engine: ComputeEngine| {
            let config = BfsConfig {
                expand: ExpandStrategy::Targeted,
                fold,
                ..BfsConfig::paper_optimized()
            }
            .with_engine(engine);
            let mut world = SimWorld::bluegene(grid);
            bfs2d::run(&graph, &mut world, &config, 0)
        };
        let serial = run(ComputeEngine::Serial);
        let rayon = run(ComputeEngine::Rayon);
        assert_eq!(serial.levels, rayon.levels, "{fold:?}");
        assert_eq!(serial.stats.levels, rayon.stats.levels, "{fold:?}");
        assert_eq!(serial.stats.comm, rayon.stats.comm, "{fold:?}");
        assert_eq!(
            serial.stats.sim_time.to_bits(),
            rayon.stats.sim_time.to_bits(),
            "{fold:?}"
        );
        assert_eq!(
            serial.stats.comm_time.to_bits(),
            rayon.stats.comm_time.to_bits(),
            "{fold:?}"
        );
        assert_eq!(
            serial.stats.compute_time.to_bits(),
            rayon.stats.compute_time.to_bits(),
            "{fold:?}"
        );
    }
}

#[test]
fn rayon_engine_bit_identical_on_bidirectional_search() {
    let spec = GraphSpec::poisson(900, 6.0, 47);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let run = |engine: ComputeEngine| {
        let mut world = SimWorld::bluegene(grid);
        bidir::run(
            &graph,
            &mut world,
            &BfsConfig::paper_optimized().with_engine(engine),
            0,
            899,
        )
    };
    let serial = run(ComputeEngine::Serial);
    let rayon = run(ComputeEngine::Rayon);
    assert_eq!(serial.distance, rayon.distance);
    assert_eq!(serial.stats.levels, rayon.stats.levels);
    assert_eq!(
        serial.stats.sim_time.to_bits(),
        rayon.stats.sim_time.to_bits()
    );
}

#[test]
fn repeated_threaded_runs_are_deterministic() {
    // Thread scheduling must not leak into results.
    let spec = GraphSpec::poisson(800, 6.0, 13);
    let grid = ProcessorGrid::new(3, 3);
    let graph = DistGraph::build(spec, grid);
    let first = threaded_run::run_threaded(&graph, 0, true);
    for _ in 0..5 {
        assert_eq!(threaded_run::run_threaded(&graph, 0, true), first);
    }
}
