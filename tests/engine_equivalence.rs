//! Engine cross-validation: the superstep simulator and the real
//! one-thread-per-rank message-passing runtime must produce identical
//! BFS labels — the evidence that simulated message routing is faithful.

use bgl_bfs::comm::{FaultPlan, OpClass, WireCount};
use bgl_bfs::core::{bfs2d, bidir, threaded_run, ComputeEngine};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld, WirePolicy};
use proptest::prelude::*;

/// Reassemble global levels and summed (expand, fold) wire counters
/// from per-rank threaded outcomes.
fn gather_threaded(
    graph: &DistGraph,
    outs: Vec<Result<threaded_run::RankOutcome, bgl_bfs::CommError>>,
) -> (Vec<u32>, WireCount, WireCount) {
    let mut levels = vec![u32::MAX; graph.spec.n as usize];
    let mut expand = WireCount::default();
    let mut fold = WireCount::default();
    for out in outs {
        let out = out.expect("fault-free run");
        let s = out.owned_start as usize;
        levels[s..s + out.levels.len()].copy_from_slice(&out.levels);
        expand.logical_bytes += out.expand_wire.logical_bytes;
        expand.wire_bytes += out.expand_wire.wire_bytes;
        fold.logical_bytes += out.fold_wire.logical_bytes;
        fold.wire_bytes += out.fold_wire.wire_bytes;
    }
    (levels, expand, fold)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_and_threads_agree(
        n in 60u64..300,
        k in 1u32..10,
        seed in 0u64..500,
        r in 1usize..4,
        c in 1usize..4,
        sent in any::<bool>(),
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);

        let threaded = threaded_run::run_threaded(&graph, 0, sent);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            sent_neighbors: sent,
            ..BfsConfig::baseline_alltoall()
        };
        let sim = bfs2d::run(&graph, &mut world, &config, 0);
        prop_assert_eq!(threaded, sim.levels);
    }
}

#[test]
fn engines_agree_on_wide_grid() {
    // More ranks than a proptest case would spawn: 24 threads.
    let spec = GraphSpec::poisson(2_000, 8.0, 77);
    let grid = ProcessorGrid::new(4, 6);
    let graph = DistGraph::build(spec, grid);
    let threaded = threaded_run::run_threaded(&graph, 19, true);
    let mut world = SimWorld::bluegene(grid);
    let sim = bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 19);
    assert_eq!(threaded, sim.levels);
}

#[test]
fn rayon_compute_engine_is_bit_identical_to_serial() {
    // The host-side rayon fan-out must never leak into results: labels,
    // per-level stats, message counters, and all three simulated clocks
    // are bit-for-bit those of the serial engine, for every strategy.
    use bgl_bfs::core::{ExpandStrategy, FoldStrategy};
    let spec = GraphSpec::poisson(1_200, 8.0, 29);
    let grid = ProcessorGrid::new(3, 4);
    let graph = DistGraph::build(spec, grid);
    for fold in [
        FoldStrategy::DirectAllToAll,
        FoldStrategy::ReduceScatterUnion,
        FoldStrategy::TwoPhaseRing,
    ] {
        let run = |engine: ComputeEngine| {
            let config = BfsConfig {
                expand: ExpandStrategy::Targeted,
                fold,
                ..BfsConfig::paper_optimized()
            }
            .with_engine(engine);
            let mut world = SimWorld::bluegene(grid);
            bfs2d::run(&graph, &mut world, &config, 0)
        };
        let serial = run(ComputeEngine::Serial);
        let rayon = run(ComputeEngine::Rayon);
        assert_eq!(serial.levels, rayon.levels, "{fold:?}");
        assert_eq!(serial.stats.levels, rayon.stats.levels, "{fold:?}");
        assert_eq!(serial.stats.comm, rayon.stats.comm, "{fold:?}");
        assert_eq!(
            serial.stats.sim_time.to_bits(),
            rayon.stats.sim_time.to_bits(),
            "{fold:?}"
        );
        assert_eq!(
            serial.stats.comm_time.to_bits(),
            rayon.stats.comm_time.to_bits(),
            "{fold:?}"
        );
        assert_eq!(
            serial.stats.compute_time.to_bits(),
            rayon.stats.compute_time.to_bits(),
            "{fold:?}"
        );
    }
}

#[test]
fn rayon_engine_bit_identical_on_bidirectional_search() {
    let spec = GraphSpec::poisson(900, 6.0, 47);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let run = |engine: ComputeEngine| {
        let mut world = SimWorld::bluegene(grid);
        bidir::run(
            &graph,
            &mut world,
            &BfsConfig::paper_optimized().with_engine(engine),
            0,
            899,
        )
    };
    let serial = run(ComputeEngine::Serial);
    let rayon = run(ComputeEngine::Rayon);
    assert_eq!(serial.distance, rayon.distance);
    assert_eq!(serial.stats.levels, rayon.stats.levels);
    assert_eq!(
        serial.stats.sim_time.to_bits(),
        rayon.stats.sim_time.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// With the adaptive wire codec on, the simulator and the threaded
    /// runtime still agree on the BFS tree AND on every sender-side
    /// byte: summed per-rank logical/wire counters equal the sim's
    /// per-class totals exactly (the codec choice is a pure function of
    /// each payload, so both runtimes must frame identically).
    #[test]
    fn wire_codec_sim_and_threads_agree_byte_for_byte(
        n in 80u64..400,
        k in 2u32..10,
        seed in 0u64..500,
        r in 1usize..4,
        c in 1usize..4,
        sent in any::<bool>(),
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);

        let outs = threaded_run::run_threaded_with_wire(
            &graph, 0, sent, FaultPlan::none(), WirePolicy::auto(),
        );
        let (levels, expand, fold) = gather_threaded(&graph, outs);

        let mut world = SimWorld::bluegene(grid).with_wire_policy(WirePolicy::auto());
        let config = BfsConfig { sent_neighbors: sent, ..BfsConfig::baseline_alltoall() };
        let sim = bfs2d::run(&graph, &mut world, &config, 0);
        prop_assert_eq!(levels, sim.levels);

        let se = sim.stats.comm.class(OpClass::Expand);
        let sf = sim.stats.comm.class(OpClass::Fold);
        prop_assert_eq!(expand.logical_bytes, se.logical_bytes);
        prop_assert_eq!(expand.wire_bytes, se.wire_bytes);
        prop_assert_eq!(fold.logical_bytes, sf.logical_bytes);
        prop_assert_eq!(fold.wire_bytes, sf.wire_bytes);
    }
}

#[test]
fn rayon_engine_bit_identical_with_wire_codec_on() {
    // The parallel superstep scheduler precomputes every send (codec
    // included) under rayon; with compression on, labels, comm stats
    // (which now carry wire bytes), and all four simulated clocks must
    // still be bit-for-bit those of the serial engine.
    let spec = GraphSpec::poisson(1_500, 9.0, 61);
    let grid = ProcessorGrid::new(3, 4);
    let graph = DistGraph::build(spec, grid);
    let run = |engine: ComputeEngine| {
        let config = BfsConfig::paper_optimized().with_engine(engine);
        let mut world = SimWorld::bluegene(grid).with_wire_policy(WirePolicy::auto());
        bfs2d::run(&graph, &mut world, &config, 0)
    };
    let serial = run(ComputeEngine::Serial);
    let rayon = run(ComputeEngine::Rayon);
    assert_eq!(serial.levels, rayon.levels);
    assert_eq!(serial.stats.levels, rayon.stats.levels);
    assert_eq!(serial.stats.comm, rayon.stats.comm);
    assert!(serial.stats.comm.total_wire_bytes() < serial.stats.comm.total_logical_bytes());
    for (s, r) in [
        (serial.stats.sim_time, rayon.stats.sim_time),
        (serial.stats.comm_time, rayon.stats.comm_time),
        (serial.stats.compute_time, rayon.stats.compute_time),
        (serial.stats.codec_time, rayon.stats.codec_time),
    ] {
        assert_eq!(s.to_bits(), r.to_bits());
    }
    assert!(serial.stats.codec_time > 0.0, "codec time must be charged");
}

#[test]
fn repeated_threaded_runs_are_deterministic() {
    // Thread scheduling must not leak into results.
    let spec = GraphSpec::poisson(800, 6.0, 13);
    let grid = ProcessorGrid::new(3, 3);
    let graph = DistGraph::build(spec, grid);
    let first = threaded_run::run_threaded(&graph, 0, true);
    for _ in 0..5 {
        assert_eq!(threaded_run::run_threaded(&graph, 0, true), first);
    }
}

/// The resilient engine (parity checkpoints, rank death, rollback and
/// replay) is bit-identical between the serial and rayon superstep
/// schedulers: same labels, same comm stats, same simulated and
/// recovery times to the last bit.
#[test]
fn rayon_engine_bit_identical_on_resilient_recovery() {
    use bgl_bfs::ResilientConfig;

    let spec = GraphSpec::poisson(6_000, 8.0, 19);
    let grid = ProcessorGrid::new(2, 4);
    let graph = DistGraph::build(spec, grid);
    let plan = FaultPlan::seeded(0xbee)
        .with_drop_prob(0.1)
        .kill_rank_at(5, 3);
    let resilient = ResilientConfig {
        parity_group_size: 4,
        ..ResilientConfig::default()
    };

    let run = |engine: ComputeEngine| {
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan.clone());
        let config = BfsConfig::paper_optimized().with_engine(engine);
        bfs2d::run_resilient(&graph, &mut world, &config, 0, &resilient)
            .expect("single death must recover")
    };
    let a = run(ComputeEngine::Serial);
    let b = run(ComputeEngine::Rayon);

    assert_eq!(a.result.levels, b.result.levels);
    assert_eq!(a.result.stats.comm, b.result.stats.comm);
    assert_eq!(a.recoveries, 1);
    assert_eq!(b.recoveries, 1);
    assert_eq!(a.recovered_ranks, b.recovered_ranks);
    assert_eq!(a.degraded_restarts, 0);
    assert_eq!(b.degraded_restarts, 0);
    assert_eq!(
        a.result.stats.sim_time.to_bits(),
        b.result.stats.sim_time.to_bits()
    );
    assert_eq!(a.recovery_time.to_bits(), b.recovery_time.to_bits());
}
