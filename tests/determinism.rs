//! Determinism and reproducibility: every run is a pure function of
//! (spec, grid, config, source) — the property the whole experiment
//! harness rests on.

use bgl_bfs::core::bfs2d;
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

#[test]
fn identical_runs_produce_identical_stats() {
    let spec = GraphSpec::poisson(1_000, 8.0, 1234);
    let grid = ProcessorGrid::new(3, 3);
    let run = || {
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 5)
    };
    let a = run();
    let b = run();
    assert_eq!(a.levels, b.levels);
    assert_eq!(a.stats.levels, b.stats.levels);
    assert_eq!(a.stats.comm, b.stats.comm);
    assert_eq!(a.stats.sim_time.to_bits(), b.stats.sim_time.to_bits());
}

#[test]
fn graph_identical_across_grid_shapes() {
    // The generated graph depends only on the spec: total entries match
    // across every partitioning (cell sampling is grid-independent).
    let spec = GraphSpec::poisson(5_000, 6.0, 99);
    let counts: Vec<u64> = [(1, 1), (2, 2), (4, 8), (32, 1), (1, 32)]
        .iter()
        .map(|&(r, c)| DistGraph::build(spec, ProcessorGrid::new(r, c)).total_entries())
        .collect();
    for w in counts.windows(2) {
        assert_eq!(w[0], w[1], "entry counts differ across grids: {counts:?}");
    }
}

#[test]
fn different_seeds_change_results_same_seed_does_not() {
    let grid = ProcessorGrid::new(2, 2);
    let levels_for = |seed: u64| {
        let spec = GraphSpec::poisson(800, 5.0, seed);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0).levels
    };
    assert_eq!(levels_for(7), levels_for(7));
    assert_ne!(levels_for(7), levels_for(8));
}

#[test]
fn world_reset_restores_clean_slate() {
    let spec = GraphSpec::poisson(600, 6.0, 11);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);
    let a = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
    world.reset();
    let b = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
    assert_eq!(a.levels, b.levels);
    assert_eq!(a.stats.sim_time.to_bits(), b.stats.sim_time.to_bits());
    assert_eq!(a.stats.comm, b.stats.comm);
}
