//! Determinism and reproducibility: every run is a pure function of
//! (spec, grid, config, source) — the property the whole experiment
//! harness rests on.

use bgl_bfs::comm::VsetPolicy;
use bgl_bfs::core::bfs2d;
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

#[test]
fn identical_runs_produce_identical_stats() {
    let spec = GraphSpec::poisson(1_000, 8.0, 1234);
    let grid = ProcessorGrid::new(3, 3);
    let run = || {
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 5)
    };
    let a = run();
    let b = run();
    assert_eq!(a.levels, b.levels);
    assert_eq!(a.stats.levels, b.stats.levels);
    assert_eq!(a.stats.comm, b.stats.comm);
    assert_eq!(a.stats.sim_time.to_bits(), b.stats.sim_time.to_bits());
}

#[test]
fn graph_identical_across_grid_shapes() {
    // The generated graph depends only on the spec: total entries match
    // across every partitioning (cell sampling is grid-independent).
    let spec = GraphSpec::poisson(5_000, 6.0, 99);
    let counts: Vec<u64> = [(1, 1), (2, 2), (4, 8), (32, 1), (1, 32)]
        .iter()
        .map(|&(r, c)| DistGraph::build(spec, ProcessorGrid::new(r, c)).total_entries())
        .collect();
    for w in counts.windows(2) {
        assert_eq!(w[0], w[1], "entry counts differ across grids: {counts:?}");
    }
}

#[test]
fn different_seeds_change_results_same_seed_does_not() {
    let grid = ProcessorGrid::new(2, 2);
    let levels_for = |seed: u64| {
        let spec = GraphSpec::poisson(800, 5.0, seed);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0).levels
    };
    assert_eq!(levels_for(7), levels_for(7));
    assert_ne!(levels_for(7), levels_for(8));
}

#[test]
fn hybrid_frontier_representation_is_bit_identical_to_list_only() {
    // The bitmap/list hybrid is a pure representation change: on a dense
    // oracle-checked graph the hybrid run must produce the same labels
    // AND the same clock bits as a list-only run, while actually taking
    // the bitmap path.
    let spec = GraphSpec::poisson(1_500, 16.0, 71);
    let adj = bgl_bfs::graph::dist::adjacency(&spec);
    let expect = bgl_bfs::core::reference::bfs_levels(&adj, 0);
    let grid = ProcessorGrid::new(2, 4);
    let graph = DistGraph::build(spec, grid);
    let run = |policy: VsetPolicy| {
        let mut world = SimWorld::bluegene(grid).with_vset_policy(policy);
        bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0)
    };
    let hybrid = run(VsetPolicy::hybrid());
    let listy = run(VsetPolicy::list_only());
    assert_eq!(hybrid.levels, expect, "hybrid run matches the oracle");
    assert_eq!(listy.levels, expect, "list-only run matches the oracle");
    assert!(
        hybrid.stats.comm.setops.bitmap_unions > 0,
        "dense graph must exercise the bitmap representation"
    );
    assert_eq!(listy.stats.comm.setops.bitmap_unions, 0);
    assert_eq!(
        hybrid.stats.sim_time.to_bits(),
        listy.stats.sim_time.to_bits(),
        "representation change must not move the simulated clock"
    );
    assert_eq!(
        hybrid.stats.comm_time.to_bits(),
        listy.stats.comm_time.to_bits()
    );
    assert_eq!(
        hybrid.stats.compute_time.to_bits(),
        listy.stats.compute_time.to_bits()
    );
    // Logical message accounting identical too (unions differ only in
    // representation counters).
    assert_eq!(
        hybrid.stats.comm.total_received(),
        listy.stats.comm.total_received()
    );
    assert_eq!(
        hybrid.stats.comm.total_dups_eliminated(),
        listy.stats.comm.total_dups_eliminated()
    );
}

#[test]
fn world_reset_restores_clean_slate() {
    let spec = GraphSpec::poisson(600, 6.0, 11);
    let grid = ProcessorGrid::new(2, 3);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);
    let a = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
    world.reset();
    let b = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
    assert_eq!(a.levels, b.levels);
    assert_eq!(a.stats.sim_time.to_bits(), b.stats.sim_time.to_bits());
    assert_eq!(a.stats.comm, b.stats.comm);
}
