//! Tier-1 acceptance tests for the tracing subsystem: golden
//! determinism, zero-cost-when-disabled, cross-runtime span agreement,
//! heatmap/cost-model reconciliation, and critical-path fidelity.

use bgl_bfs::core::{bfs2d, run_threaded_traced, BfsConfig, ResilientConfig};
use bgl_bfs::trace::{chrome::chrome_trace, json, CriticalPath, EventKind, LinkHeatmap, Phase};
use bgl_bfs::{DistGraph, FaultPlan, GraphSpec, ProcessorGrid, SimWorld, TraceDetail};
use std::collections::BTreeSet;

fn setup(n: u64, k: f64, seed: u64, rows: usize, cols: usize) -> (DistGraph, ProcessorGrid) {
    let spec = GraphSpec::poisson(n, k, seed);
    let grid = ProcessorGrid::new(rows, cols);
    (DistGraph::build(spec, grid), grid)
}

/// Golden-trace determinism: the same seed and config must produce a
/// byte-identical Chrome trace, twice.
#[test]
fn chrome_trace_is_deterministic() {
    let (graph, grid) = setup(3_000, 6.0, 11, 2, 3);
    let render = || {
        let mut world = SimWorld::bluegene(grid);
        world.enable_trace(TraceDetail::Event);
        let _ = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);
        chrome_trace(&world.take_trace().unwrap())
    };
    let a = render();
    let b = render();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed/config must trace byte-identically");
    // And the export is valid JSON by our own parser.
    let doc = json::parse(&a).expect("chrome trace must parse");
    assert!(doc.get("traceEvents").and_then(|v| v.as_arr()).is_some());
}

/// The disabled sink allocates nothing and tracing never perturbs the
/// simulated clock: a traced run and an untraced run of the same search
/// report bit-identical times.
#[test]
fn disabled_tracing_is_free_and_never_perturbs_the_clock() {
    let (graph, grid) = setup(3_000, 6.0, 13, 2, 2);

    let mut untraced = SimWorld::bluegene(grid);
    let plain = bfs2d::run(&graph, &mut untraced, &BfsConfig::paper_optimized(), 0);
    assert!(!untraced.trace().is_enabled());
    assert_eq!(
        untraced.trace().allocated(),
        0,
        "no-op sink must not allocate"
    );

    let mut traced = SimWorld::bluegene(grid);
    traced.enable_trace(TraceDetail::Event);
    let r = bfs2d::run(&graph, &mut traced, &BfsConfig::paper_optimized(), 0);
    assert_eq!(plain.levels, r.levels);
    assert_eq!(
        plain.stats.sim_time.to_bits(),
        r.stats.sim_time.to_bits(),
        "recording events must not change simulated time"
    );
    assert!(!traced.take_trace().unwrap().is_empty());
}

/// Both runtimes trace the same collective phases: the deduplicated
/// (phase, level) span key set of a simulator run equals that of a
/// threaded run of the same search (order-insensitive — wall-clock
/// interleaving differs, the structure must not).
#[test]
fn sim_and_threaded_runs_trace_identical_span_sets() {
    let (graph, grid) = setup(2_000, 5.0, 17, 2, 2);
    // The threaded runtime hard-codes targeted expand + direct fold.
    let config = BfsConfig::baseline_alltoall();

    let mut world = SimWorld::bluegene(grid);
    world.enable_trace(TraceDetail::Span);
    let sim = bfs2d::run(&graph, &mut world, &config, 0);
    let sim_buf = world.take_trace().unwrap();

    let threaded = run_threaded_traced(&graph, 0, config.sent_neighbors, TraceDetail::Span);
    assert_eq!(sim.levels, threaded.levels);

    let span_keys = |events: Vec<(usize, bgl_bfs::trace::TraceEvent)>| -> BTreeSet<(Phase, u32)> {
        events
            .into_iter()
            .filter_map(|(_, ev)| match ev.kind {
                EventKind::Span { phase, level } => Some((phase, level)),
                _ => None,
            })
            .collect()
    };
    let sim_keys = span_keys(sim_buf.events());
    let thr_keys = span_keys(threaded.buffer.events());
    assert!(!sim_keys.is_empty());
    assert_eq!(sim_keys, thr_keys, "runtimes must trace the same phases");
}

/// The heatmap's Σ bytes × hops, replayed purely from recorded send
/// events, equals the cost model's own per-link accounting for the same
/// run — the trace is a faithful record of the wire.
#[test]
fn heatmap_reconciles_with_cost_model_link_accounting() {
    let (graph, grid) = setup(4_000, 8.0, 23, 3, 3);
    let mut world = SimWorld::bluegene(grid);
    world.enable_traffic_accounting();
    world.enable_trace(TraceDetail::Event);
    let _ = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);

    let traffic_total = world.traffic().unwrap().sum_link_bytes();
    let buf = world.take_trace().unwrap();
    let events: Vec<_> = buf.events().into_iter().map(|(_, ev)| ev).collect();
    let machine = *world.cost_model().machine();
    let hm = LinkHeatmap::from_events(events.iter(), world.mapping(), &machine);
    assert!(hm.sends() > 0);
    assert_eq!(
        hm.total_bytes_hops(),
        traffic_total,
        "heatmap must reproduce the α–β–hop Σ bytes × hops exactly"
    );
    assert_eq!(hm.total_bytes(), world.traffic().unwrap().total_bytes());
}

/// With the adaptive wire codec on, the trace still reconciles with the
/// cost model: Send events carry *encoded* frame sizes, so the heatmap's
/// byte totals equal `LinkTraffic`'s, both equal the stats' wire-byte
/// counters, and the summary's wire object reports the same compression
/// the stats do — the golden trace documents the codec's effect.
#[test]
fn compressed_send_bytes_reconcile_trace_traffic_and_stats() {
    use bgl_bfs::trace::WireSummary;
    use bgl_bfs::WirePolicy;
    let (graph, grid) = setup(4_000, 8.0, 23, 3, 3);
    let mut world = SimWorld::bluegene(grid).with_wire_policy(WirePolicy::auto());
    world.enable_traffic_accounting();
    world.enable_trace(TraceDetail::Event);
    let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);

    let (traffic_hops, traffic_bytes) = {
        let traffic = world.traffic().unwrap();
        (traffic.sum_link_bytes(), traffic.total_bytes())
    };
    let buf = world.take_trace().unwrap();
    let events: Vec<_> = buf.events().into_iter().map(|(_, ev)| ev).collect();
    let machine = *world.cost_model().machine();
    let hm = LinkHeatmap::from_events(events.iter(), world.mapping(), &machine);
    assert_eq!(hm.total_bytes_hops(), traffic_hops);
    assert_eq!(hm.total_bytes(), traffic_bytes);
    assert_eq!(hm.total_bytes(), r.stats.comm.total_wire_bytes());

    let wire = WireSummary::from_events(events.iter());
    assert_eq!(wire.wire_bytes, r.stats.comm.total_wire_bytes());
    assert_eq!(wire.logical_bytes(), r.stats.comm.total_logical_bytes());
    assert!(
        wire.compression_ratio() > 1.5,
        "codec must pay on the trace"
    );
    assert!(
        (wire.codec_time - r.stats.codec_time).abs() <= 1e-12 * r.stats.codec_time,
        "traced codec compute must reconcile with the stats clock"
    );
}

/// Critical-path fidelity: every level's bounding span is the level span
/// itself, whose duration equals the recorded LevelStats sim_time
/// bit-for-bit; phase slices partition the level; coverage is ≥ 90%.
#[test]
fn critical_path_matches_level_stats() {
    let (graph, grid) = setup(5_000, 8.0, 29, 2, 3);
    let mut world = SimWorld::bluegene(grid);
    world.enable_trace(TraceDetail::Span);
    let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);
    let buf = world.take_trace().unwrap();

    let cp = CriticalPath::analyze(&buf);
    assert_eq!(cp.levels.len(), r.stats.levels.len());
    for (lvl, rec) in cp.levels.iter().zip(&r.stats.levels) {
        assert_eq!(lvl.level, rec.level);
        assert_eq!(
            lvl.duration().to_bits(),
            rec.sim_time.to_bits(),
            "level {} span must equal its LevelStats sim_time",
            rec.level
        );
        // The phase slices cover the level exactly (max-over-ranks BSP
        // accounting: phases are serial on the simulated clock).
        let phase_sum: f64 = lvl.phases.iter().map(|p| p.duration).sum();
        assert!(
            (phase_sum - lvl.duration()).abs() <= 1e-12 * lvl.duration().max(1.0),
            "phase slices must partition level {}",
            rec.level
        );
        assert!(lvl.bounding().is_some());
    }
    assert!(
        cp.coverage() >= 0.9,
        "level spans must cover >=90% of traced time, got {}",
        cp.coverage()
    );
    // The summary export round-trips through our JSON parser.
    let doc = json::parse(&cp.to_summary_json()).expect("summary must parse");
    assert!(doc.get("coverage").and_then(|v| v.as_f64()).unwrap() >= 0.9);
}

/// Resilient runs leave a fault-visible trace: the scheduled death, the
/// checkpoints, and the recovery all appear as events.
#[test]
fn resilient_trace_records_death_checkpoint_and_recovery() {
    let (graph, grid) = setup(3_000, 6.0, 31, 2, 3);
    let plan = FaultPlan::seeded(5).kill_rank_at(4, 3);
    let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
    world.enable_trace(TraceDetail::Span);
    let got = bfs2d::run_resilient(
        &graph,
        &mut world,
        &BfsConfig::paper_optimized(),
        0,
        &ResilientConfig::default(),
    )
    .unwrap();
    assert_eq!(got.recoveries, 1);

    let buf = world.take_trace().unwrap();
    let events: Vec<_> = buf.events().into_iter().map(|(_, ev)| ev.kind).collect();
    assert!(events
        .iter()
        .any(|k| matches!(k, EventKind::RankDeath { rank: 4, .. })));
    assert!(events
        .iter()
        .any(|k| matches!(k, EventKind::Recovery { rank: 4 })));
    assert!(events
        .iter()
        .any(|k| matches!(k, EventKind::Checkpoint { .. })));
    assert!(events.iter().any(|k| matches!(
        k,
        EventKind::Span {
            phase: Phase::Recovery,
            ..
        }
    )));
}

/// Lossy exchanges surface as retransmit events carrying the retry
/// count, in both runtimes' traces.
#[test]
fn retransmits_are_traced() {
    let (graph, grid) = setup(2_000, 6.0, 37, 2, 2);
    let plan = FaultPlan::seeded(7).with_drop_prob(0.3);
    let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
    world.enable_trace(TraceDetail::Event);
    let r = bfs2d::try_run(&graph, &mut world, &BfsConfig::paper_optimized(), 0).unwrap();
    assert!(r.stats.comm.faults.retransmissions > 0);
    let buf = world.take_trace().unwrap();
    let retries: u64 = buf
        .events()
        .into_iter()
        .filter_map(|(_, ev)| match ev.kind {
            EventKind::Retransmit { retries, .. } => Some(retries as u64),
            _ => None,
        })
        .sum();
    assert_eq!(
        retries, r.stats.comm.faults.retransmissions,
        "traced retries must reconcile with the fault counters"
    );
}

/// Regression (stat-accumulation audit): a checkpoint/recover run under
/// a death-only plan replays the rolled-back levels exactly — its
/// per-level records, totals and label output match a fault-free run of
/// the same search, with nothing double-counted.
#[test]
fn resilient_level_records_are_not_double_counted() {
    let (graph, grid) = setup(4_000, 6.0, 41, 2, 3);

    let mut clean = SimWorld::bluegene(grid);
    let plain = bfs2d::run(&graph, &mut clean, &BfsConfig::paper_optimized(), 0);

    let plan = FaultPlan::seeded(5).kill_rank_at(2, 4);
    let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
    let got = bfs2d::run_resilient(
        &graph,
        &mut world,
        &BfsConfig::paper_optimized(),
        0,
        &ResilientConfig::default(),
    )
    .unwrap();
    assert_eq!(got.recoveries, 1);
    assert_eq!(got.result.levels, plain.levels);

    // One record per level — the rolled-back attempts must not linger.
    let recs = &got.result.stats.levels;
    assert_eq!(recs.len(), plain.stats.levels.len());
    for (a, b) in recs.iter().zip(&plain.stats.levels) {
        assert_eq!(a.level, b.level);
        assert_eq!(a.frontier, b.frontier, "level {}", a.level);
        assert_eq!(a.expand_received, b.expand_received, "level {}", a.level);
        assert_eq!(a.fold_received, b.fold_received, "level {}", a.level);
        assert_eq!(a.dups_eliminated, b.dups_eliminated, "level {}", a.level);
    }
    // Frontier sizes still sum to the reached count (counted once).
    let frontier_sum: u64 = recs.iter().map(|l| l.frontier).sum();
    assert_eq!(frontier_sum, got.result.stats.reached);
    assert_eq!(got.result.stats.reached, plain.stats.reached);
}
