//! Property-based oracle equivalence: every distributed BFS variant, on
//! every partitioning and strategy combination, must produce exactly the
//! sequential reference labels on the same generated graph.

use bgl_bfs::core::{bfs1d, bfs2d, bidir, reference};
use bgl_bfs::{
    BfsConfig, DistGraph, ExpandStrategy, FoldStrategy, GraphSpec, ProcessorGrid, SimWorld,
};
use proptest::prelude::*;

fn expand_strategy() -> impl Strategy<Value = ExpandStrategy> {
    prop_oneof![
        Just(ExpandStrategy::Targeted),
        Just(ExpandStrategy::AllGatherRing),
        Just(ExpandStrategy::TwoPhaseRing),
    ]
}

fn fold_strategy() -> impl Strategy<Value = FoldStrategy> {
    prop_oneof![
        Just(FoldStrategy::DirectAllToAll),
        Just(FoldStrategy::ReduceScatterUnion),
        Just(FoldStrategy::TwoPhaseRing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs2d_matches_sequential_oracle(
        n in 50u64..400,
        k in 1u32..12,
        seed in 0u64..1000,
        r in 1usize..5,
        c in 1usize..5,
        source_frac in 0.0f64..1.0,
        expand in expand_strategy(),
        fold in fold_strategy(),
        sent in any::<bool>(),
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let source = ((n - 1) as f64 * source_frac) as u64;
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, source);

        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig { expand, fold, sent_neighbors: sent, ..BfsConfig::default() };
        let got = bfs2d::run(&graph, &mut world, &config, source);
        prop_assert_eq!(got.levels, expect);
    }

    #[test]
    fn bfs1d_matches_sequential_oracle(
        n in 50u64..400,
        k in 1u32..12,
        seed in 0u64..1000,
        p in 1usize..9,
        fold in fold_strategy(),
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);

        let grid = ProcessorGrid::one_d(p);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig { fold, ..BfsConfig::default() };
        let got = bfs1d::run(&graph, &mut world, &config, 0);
        prop_assert_eq!(got.levels, expect);
    }

    #[test]
    fn bidirectional_distance_matches_oracle(
        n in 50u64..300,
        k in 1u32..10,
        seed in 0u64..1000,
        r in 1usize..4,
        c in 1usize..4,
        s_frac in 0.0f64..1.0,
        t_frac in 0.0f64..1.0,
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let s = ((n - 1) as f64 * s_frac) as u64;
        let t = ((n - 1) as f64 * t_frac) as u64;
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let expect = reference::distance(&adj, s, t);

        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = bidir::run(&graph, &mut world, &BfsConfig::default(), s, t);
        prop_assert_eq!(got.distance, expect);
    }

    #[test]
    fn small_world_graphs_also_match_oracle(
        n in 50u64..300,
        half_k in 1u32..5,
        rewire in 0.0f64..=1.0,
        seed in 0u64..500,
        r in 1usize..4,
        c in 1usize..4,
    ) {
        let spec = GraphSpec::small_world(n, (half_k * 2) as f64, rewire, seed);
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);

        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
        prop_assert_eq!(got.levels, expect);
    }

    #[test]
    fn rmat_graphs_also_match_oracle(
        scale in 6u32..9,
        k in 2u32..10,
        seed in 0u64..500,
        r in 1usize..4,
        c in 1usize..4,
    ) {
        let spec = GraphSpec::rmat(1u64 << scale, k as f64, seed);
        let adj = bgl_bfs::graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);

        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
        prop_assert_eq!(got.levels, expect);
    }
}

#[test]
fn early_exit_target_level_matches_oracle_distance() {
    let spec = GraphSpec::poisson(500, 6.0, 4242);
    let adj = bgl_bfs::graph::dist::adjacency(&spec);
    let grid = ProcessorGrid::new(3, 3);
    let graph = DistGraph::build(spec, grid);
    for t in [1u64, 250, 499, 123] {
        let expect = reference::distance(&adj, 0, t);
        let mut world = SimWorld::bluegene(grid);
        let got = bfs2d::run(&graph, &mut world, &BfsConfig::default().with_target(t), 0);
        assert_eq!(got.target_level, expect, "target {t}");
    }
}
