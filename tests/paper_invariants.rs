//! The paper's scalability invariants, checked empirically end-to-end:
//! fixed message buffers (§3.1), O(n/P) storage (§2.4.1), strategy
//! equivalence, and the 1D ≡ 2D(R=1) degeneracy (§2.2).

use bgl_bfs::comm::{ChunkPolicy, OpClass};
use bgl_bfs::core::{bfs1d, bfs2d, theory};
use bgl_bfs::torus::{MachineConfig, TaskMappingKind};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

/// §3.1: with fixed-length message buffers, the peak single-message
/// buffer a run needs is capped by the chunk capacity regardless of P.
#[test]
fn fixed_buffers_bound_peak_message_independent_of_p() {
    let chunk = 64usize;
    let mut peaks = Vec::new();
    for p in [4usize, 16, 64] {
        let per_rank = 500u64;
        let n = per_rank * p as u64;
        let spec = GraphSpec::poisson(n, 10.0, 5);
        let grid = ProcessorGrid::square_ish(p);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::new(
            grid,
            MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(p)),
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::fixed(chunk),
        );
        let _ = bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 1);
        peaks.push(world.stats.peak_buffer_verts);
    }
    for &peak in &peaks {
        assert!(peak <= chunk, "peak {peak} exceeds fixed buffer {chunk}");
    }
}

/// §3.1: without chunking, the unbounded peak grows with the problem —
/// the contrast that motivates fixed buffers.
#[test]
fn unbounded_buffers_grow_with_problem_size() {
    let mut peaks = Vec::new();
    for n in [2_000u64, 8_000, 32_000] {
        let spec = GraphSpec::poisson(n, 10.0, 5);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let _ = bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 1);
        peaks.push(world.stats.peak_buffer_verts);
    }
    assert!(
        peaks[0] < peaks[1] && peaks[1] < peaks[2],
        "peaks {peaks:?}"
    );
}

/// §2.4.1: per-rank storage (non-empty lists, unique row ids) stays
/// near n/P as P grows at fixed n — the memory-scalability claim.
#[test]
fn per_rank_index_storage_scales_as_n_over_p() {
    let n = 20_000u64;
    let spec = GraphSpec::poisson(n, 8.0, 9);
    for p in [4usize, 16, 64] {
        let grid = ProcessorGrid::square_ish(p);
        let graph = DistGraph::build(spec, grid);
        let bound = 8.0 * 8.0 * n as f64 / p as f64; // ~ k * n/P with slack
        for r in &graph.ranks {
            assert!(
                (r.edges.num_cols() as f64) < bound,
                "P={p}: rank {} indexes {} columns",
                r.rank,
                r.edges.num_cols()
            );
            assert!(
                (r.edges.num_row_ids() as f64) < bound,
                "P={p}: rank {} indexes {} row ids",
                r.rank,
                r.edges.num_row_ids()
            );
        }
    }
}

/// All nine expand × fold strategy combinations move the frontier to the
/// same labels AND report the same reached count.
#[test]
fn all_strategy_combinations_equivalent() {
    use bgl_bfs::{ExpandStrategy, FoldStrategy};
    let spec = GraphSpec::poisson(600, 7.0, 33);
    let grid = ProcessorGrid::new(3, 4);
    let graph = DistGraph::build(spec, grid);
    let mut reference: Option<Vec<u32>> = None;
    for expand in [
        ExpandStrategy::Targeted,
        ExpandStrategy::AllGatherRing,
        ExpandStrategy::TwoPhaseRing,
    ] {
        for fold in [
            FoldStrategy::DirectAllToAll,
            FoldStrategy::ReduceScatterUnion,
            FoldStrategy::TwoPhaseRing,
        ] {
            let mut world = SimWorld::bluegene(grid);
            let config = BfsConfig {
                expand,
                fold,
                ..BfsConfig::default()
            };
            let got = bfs2d::run(&graph, &mut world, &config, 2);
            match &reference {
                None => reference = Some(got.levels),
                Some(r) => assert_eq!(&got.levels, r, "{expand:?}/{fold:?}"),
            }
        }
    }
}

/// §2.2: Algorithm 1 and Algorithm 2 at R = 1 are the same algorithm —
/// same labels, same fold volume, zero expand traffic for both.
#[test]
fn one_d_is_degenerate_two_d() {
    let spec = GraphSpec::poisson(700, 9.0, 17);
    for p in [2usize, 5, 8] {
        let grid = ProcessorGrid::one_d(p);
        let graph = DistGraph::build(spec, grid);
        let config = BfsConfig::default();
        let mut w1 = SimWorld::bluegene(grid);
        let a = bfs1d::run(&graph, &mut w1, &config, 0);
        let mut w2 = SimWorld::bluegene(grid);
        let b = bfs2d::run(&graph, &mut w2, &config, 0);
        assert_eq!(a.levels, b.levels, "p={p}");
        assert_eq!(
            a.stats.comm.class(OpClass::Fold).received_verts,
            b.stats.comm.class(OpClass::Fold).received_verts,
            "p={p}"
        );
        assert_eq!(a.stats.comm.class(OpClass::Expand).received_verts, 0);
        assert_eq!(b.stats.comm.class(OpClass::Expand).received_verts, 0);
    }
}

/// §3.1: measured expand volume under the targeted strategy respects the
/// analytic worst-case bound n/P·k per processor (whole search, with
/// slack for variance).
#[test]
fn targeted_expand_respects_analytic_bound() {
    let n = 10_000u64;
    let k = 12.0;
    let spec = GraphSpec::poisson(n, k, 21);
    let grid = ProcessorGrid::new(4, 4);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);
    let r = bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 1);
    let per_proc = r.stats.comm.class(OpClass::Expand).received_verts as f64 / grid.len() as f64;
    let bound = theory::worst_case_len(n as f64, k, grid.len() as f64);
    assert!(
        per_proc <= 1.5 * bound,
        "measured per-proc expand {per_proc} vs bound {bound}"
    );
    // And the analytic expectation is a good predictor (within 2x).
    let expect = theory::expected_len_2d_expand(n as f64, k, 16.0, 4.0);
    assert!(
        per_proc < 2.0 * expect && per_proc > 0.3 * expect,
        "measured {per_proc} vs expected {expect}"
    );
}

/// The mean-field frontier model (branching process) predicts the
/// simulator's measured per-level frontier sizes through the growth
/// phase, and the giant-component fixed point predicts the reached
/// count — the analytic backbone of the Figure 4.b claim.
#[test]
fn measured_frontiers_track_mean_field_model() {
    let n = 50_000u64;
    let k = 10.0;
    // The branching-process model predicts frontiers for a *typical*
    // source; early levels scale with the actual source degree, so the
    // fixed seed must give the source a degree close to k (seed 2 does:
    // the level-1 frontier is 11 with k = 10).
    let spec = GraphSpec::poisson(n, k, 2);
    let grid = ProcessorGrid::new(4, 4);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);
    let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 1);

    let predicted = theory::expected_frontiers(n as f64, k);
    let measured: Vec<f64> = r.stats.levels.iter().map(|l| l.frontier as f64).collect();
    // Same level count within one.
    assert!(
        (predicted.len() as i64 - measured.len() as i64).abs() <= 1,
        "levels: predicted {} measured {}",
        predicted.len(),
        measured.len()
    );
    // Through the growth phase (frontiers > 20 and < n/10) the model is
    // accurate to ~30%.
    for (l, (&m, &p)) in measured.iter().zip(&predicted).enumerate() {
        if m > 20.0 && m < n as f64 / 10.0 {
            assert!(
                (m - p).abs() / p < 0.3,
                "level {l}: measured {m} vs predicted {p}"
            );
        }
    }
    // Reached count matches the giant-component prediction within 1%.
    let giant = theory::giant_component_fraction(k) * n as f64;
    assert!(
        (r.stats.reached as f64 - giant).abs() / giant < 0.01,
        "reached {} vs giant {giant}",
        r.stats.reached
    );
}

/// The sent-neighbors cache (§2.4.3) strictly reduces fold traffic.
#[test]
fn sent_neighbors_cache_reduces_fold_volume() {
    let spec = GraphSpec::poisson(3_000, 15.0, 8);
    let grid = ProcessorGrid::new(2, 4);
    let graph = DistGraph::build(spec, grid);

    let run = |sent: bool| {
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            sent_neighbors: sent,
            ..BfsConfig::baseline_alltoall()
        };
        let r = bfs2d::run(&graph, &mut world, &config, 0);
        (r.levels, r.stats.comm.class(OpClass::Fold).received_verts)
    };
    let (levels_on, fold_on) = run(true);
    let (levels_off, fold_off) = run(false);
    assert_eq!(levels_on, levels_off);
    assert!(
        fold_on < fold_off,
        "cache on {fold_on} must be < cache off {fold_off}"
    );
}

/// The union-fold does real duplicate elimination at high degree: the
/// vertices it unions away en route are comparable in volume to the
/// vertices it actually delivers (Figure 7's premise), and the §3.2.2
/// two-phase grouping makes the union ring cheaper than the full ring
/// in modeled time without changing results.
#[test]
fn union_fold_eliminates_heavily_and_two_phase_is_cheaper() {
    use bgl_bfs::FoldStrategy;
    let spec = GraphSpec::poisson(1_000, 100.0, 3);
    let grid = ProcessorGrid::new(2, 6);
    let graph = DistGraph::build(spec, grid);

    let run_fold = |fold| {
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            fold,
            sent_neighbors: false, // maximize duplicates in flight
            ..BfsConfig::default()
        };
        let r = bfs2d::run(&graph, &mut world, &config, 0);
        (
            r.levels,
            world.stats.class(OpClass::Fold).wire_verts,
            world.stats.total_dups_eliminated(),
            world.comm_time(),
        )
    };
    let (lv_direct, _, dups_direct, _) = run_fold(FoldStrategy::DirectAllToAll);
    let (lv_ring, wire_ring, dups_ring, t_ring) = run_fold(FoldStrategy::ReduceScatterUnion);
    let (lv_two, _, dups_two, t_two) = run_fold(FoldStrategy::TwoPhaseRing);

    assert_eq!(lv_direct, lv_ring);
    assert_eq!(lv_direct, lv_two);
    assert_eq!(dups_direct, 0, "direct fold performs no en-route unions");
    assert_eq!(
        dups_ring, dups_two,
        "both union strategies remove the same set"
    );
    // At k=100 the duplicate volume rivals the delivered volume.
    assert!(
        dups_ring as f64 > 0.5 * wire_ring as f64,
        "dups {dups_ring} vs wire {wire_ring}"
    );
    assert!(
        t_two < t_ring,
        "two-phase {t_two} should model cheaper than full ring {t_ring}"
    );
}
